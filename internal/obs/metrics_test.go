package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "", "a counter")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}

	g := reg.Gauge("g", "", "a gauge")
	g.Set(7)
	g.SetMax(3) // smaller: no-op
	if g.Value() != 7 {
		t.Errorf("gauge = %d, want 7", g.Value())
	}
	g.SetMax(11)
	if g.Value() != 11 {
		t.Errorf("gauge = %d, want 11", g.Value())
	}

	h := reg.Histogram("h", "", "a histogram", []int64{1, 10})
	for _, v := range []int64{0, 1, 2, 10, 11, 100} {
		h.Observe(v)
	}
	if h.Count() != 6 || h.Sum() != 124 {
		t.Errorf("hist count=%d sum=%d", h.Count(), h.Sum())
	}
	bounds, cum := h.Buckets()
	if len(bounds) != 2 || bounds[0] != 1 || bounds[1] != 10 {
		t.Errorf("bounds = %v", bounds)
	}
	// ≤1: {0,1} → 2; ≤10: +{2,10} → 4; +Inf: 6.
	if cum[0] != 2 || cum[1] != 4 || cum[2] != 6 {
		t.Errorf("cumulative = %v", cum)
	}
}

func TestRegistryIdempotentRegistration(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", `task="A"`, "")
	b := reg.Counter("x_total", `task="A"`, "")
	if a != b {
		t.Error("same series registered twice returned different handles")
	}
	other := reg.Counter("x_total", `task="B"`, "")
	if a == other {
		t.Error("different label sets share a handle")
	}
	if n := len(reg.Snapshot()); n != 2 {
		t.Errorf("snapshot has %d series, want 2", n)
	}
	// A kind clash must not corrupt the registered entry.
	g := reg.Gauge("x_total", `task="A"`, "")
	g.Set(99)
	if a.Value() != 0 {
		t.Error("kind clash corrupted the counter")
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("pfair_migrations_total", "", "migrations").Add(3)
	reg.Counter("pfair_task_migrations_total", `task="A"`, "per task").Add(2)
	reg.Counter("pfair_task_migrations_total", `task="B"`, "per task").Add(1)
	reg.Gauge("pfair_ready_queue_len", "", "ready length").Set(4)
	h := reg.Histogram("pfair_tardiness_slots", "", "tardiness", []int64{1, 2})
	h.Observe(1)
	h.Observe(5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP pfair_migrations_total migrations",
		"# TYPE pfair_migrations_total counter",
		"pfair_migrations_total 3",
		`pfair_task_migrations_total{task="A"} 2`,
		`pfair_task_migrations_total{task="B"} 1`,
		"# TYPE pfair_ready_queue_len gauge",
		"pfair_ready_queue_len 4",
		"# TYPE pfair_tardiness_slots histogram",
		`pfair_tardiness_slots_bucket{le="1"} 1`,
		`pfair_tardiness_slots_bucket{le="2"} 1`,
		`pfair_tardiness_slots_bucket{le="+Inf"} 2`,
		"pfair_tardiness_slots_sum 6",
		"pfair_tardiness_slots_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The per-family TYPE header must appear exactly once.
	if n := strings.Count(out, "# TYPE pfair_task_migrations_total"); n != 1 {
		t.Errorf("TYPE header for labeled family appears %d times", n)
	}
}

func TestEscapeLabel(t *testing.T) {
	if got := EscapeLabel("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Errorf("EscapeLabel = %q", got)
	}
}

// TestWritePrometheusEscapedLabels: a hostile label value registered via
// EscapeLabel must appear escaped — never raw — in the exposition, so a
// task named with quotes or newlines cannot corrupt the text format.
func TestWritePrometheusEscapedLabels(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", `task="`+EscapeLabel("a\"b\\c\nd")+`"`, "").Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `x_total{task="a\"b\\c\nd"} 1`) {
		t.Errorf("escaped series missing:\n%s", out)
	}
	// A raw newline inside a sample line would split it into two garbage
	// lines; every line must carry either a # prefix or a sample.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if line == "" || (!strings.HasPrefix(line, "#") && !strings.Contains(line, " ")) {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

// TestWritePrometheusBucketsCumulative: bucket samples must be cumulative
// and non-decreasing in le order, ending at the +Inf bucket == _count —
// the Prometheus histogram contract scrapers rely on.
func TestWritePrometheusBucketsCumulative(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat", "", "", []int64{1, 2, 4})
	for _, v := range []int64{0, 1, 3, 3, 9} {
		h.Observe(v)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// ≤1: {0,1} → 2; ≤2: 2; ≤4: +{3,3} → 4; +Inf: 5.
	wantOrder := []string{
		`lat_bucket{le="1"} 2`,
		`lat_bucket{le="2"} 2`,
		`lat_bucket{le="4"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		`lat_count 5`,
	}
	last := -1
	for _, want := range wantOrder {
		i := strings.Index(out, want)
		if i < 0 {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
		if i < last {
			t.Errorf("%q appears out of le order", want)
		}
		last = i
	}
}

// TestWritePrometheusHelpOnce: HELP, like TYPE, appears exactly once per
// family even when the family has many labeled series.
func TestWritePrometheusHelpOnce(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("f_total", `task="A"`, "the help text").Inc()
	reg.Counter("f_total", `task="B"`, "the help text").Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if n := strings.Count(out, "# HELP f_total"); n != 1 {
		t.Errorf("HELP appears %d times, want 1:\n%s", n, out)
	}
	if n := strings.Count(out, "# TYPE f_total"); n != 1 {
		t.Errorf("TYPE appears %d times, want 1:\n%s", n, out)
	}
}

func TestExpvarFunc(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "", "").Add(2)
	h := reg.Histogram("h", "", "", []int64{10})
	h.Observe(4)

	raw, err := json.Marshal(reg.ExpvarFunc()())
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(raw, &m); err != nil {
		t.Fatal(err)
	}
	if m["c_total"] != float64(2) {
		t.Errorf("c_total = %v", m["c_total"])
	}
	hist, ok := m["h"].(map[string]any)
	if !ok || hist["count"] != float64(1) || hist["sum"] != float64(4) {
		t.Errorf("h = %v", m["h"])
	}
}

func TestWriteSummarySorted(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("z_total", "", "").Inc()
	reg.Counter("a_total", "", "").Inc()
	reg.Histogram("m_hist", "", "", []int64{1}).Observe(3)
	var b strings.Builder
	if err := reg.WriteSummary(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	ia, im, iz := strings.Index(out, "a_total"), strings.Index(out, "m_hist"), strings.Index(out, "z_total")
	if ia < 0 || im < 0 || iz < 0 || !(ia < im && im < iz) {
		t.Errorf("summary not sorted:\n%s", out)
	}
	if !strings.Contains(out, "m_hist count=1 sum=3") {
		t.Errorf("histogram summary wrong:\n%s", out)
	}
}

func TestSchedulerMetrics(t *testing.T) {
	m := NewSchedulerMetrics(nil)
	if m.Registry() == nil {
		t.Fatal("nil registry not defaulted")
	}
	m.EnsureTask(1, "B", 5)
	m.EnsureTask(0, "A", 3)
	m.EnsureTask(0, "A", 3) // idempotent
	if m.Task(0) == nil || m.Task(1) == nil {
		t.Fatal("registered tasks not retrievable")
	}
	if m.Task(0) == m.Task(1) {
		t.Fatal("distinct ids share instruments")
	}
	if m.Task(2) != nil || m.Task(-1) != nil {
		t.Fatal("unregistered ids must return nil")
	}
	if m.Task(0).LagDen != 3 {
		t.Errorf("LagDen = %d, want 3", m.Task(0).LagDen)
	}
	m.Task(0).Migrations.Inc()
	var b strings.Builder
	if err := m.Registry().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `pfair_task_migrations_total{task="A"} 1`) {
		t.Errorf("per-task series missing:\n%s", b.String())
	}
}

// TestInstrumentUpdatesZeroAlloc pins the registry's hot-path contract.
func TestInstrumentUpdatesZeroAlloc(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total", "", "")
	g := reg.Gauge("g", "", "")
	h := reg.Histogram("h", "", "", []int64{1, 8, 64})
	m := NewSchedulerMetrics(reg)
	m.EnsureTask(0, "A", 3)
	v := int64(0)
	allocs := testing.AllocsPerRun(2000, func() {
		c.Inc()
		c.Add(2)
		g.Set(v)
		g.SetMax(v + 1)
		h.Observe(v % 100)
		if tm := m.Task(0); tm != nil {
			tm.Preemptions.Inc()
			tm.MaxAbsLagNum.SetMax(v % 7)
		}
		v++
	})
	if allocs != 0 {
		t.Fatalf("instrument updates allocate %v/op, want 0", allocs)
	}
}
