package obs

import (
	"fmt"
	"io"
)

// PhaseProfiler holds the preallocated per-phase duration histograms the
// engine's sampled profiling path (engine.WithProfiler) records into. The
// engine's five phases — Release, Pick, Dispatch, Account, Next — are the
// cost decomposition behind the paper's overhead comparisons: Figure 2
// measures the total per-slot cost, the profiler says where inside the
// slot it goes (releases draining the calendar wheel, the pick
// tournament, the dispatch commit, accounting, the clock advance).
//
// Profiling must not distort the thing it measures, so the same two rules
// as the rest of this package apply: every instrument is preallocated
// here (registration is the only allocating operation), and the engine
// holds a concrete *PhaseProfiler pointer, nil when detached, guarded at
// each use. Sampling every k-th step keeps the steady-state overhead to
// one modulo and one branch per step; the sampled steps themselves pay
// six monotonic clock reads. BenchmarkStepAllocsProfiled pins the
// attached-and-sampling path at 0 allocs/op.
//
// Durations are recorded in nanoseconds as int64 — wall-clock phase cost
// is a measurement about the host machine, not simulated time, so the
// determinism rule does not apply to the recorded values (the engine's
// clock reads carry //pfair:allowtime annotations); scheduling decisions
// are never affected, which the golden equivalence suite pins.
type PhaseProfiler struct {
	// Release..Next are the per-phase wall-clock histograms, one
	// observation per sampled step each.
	Release  *Histogram
	Pick     *Histogram
	Dispatch *Histogram
	Account  *Histogram
	Next     *Histogram
	// Samples counts sampled steps (each contributes one observation to
	// every phase histogram).
	Samples *Counter

	every int64
	reg   *Registry
}

// phaseBounds covers sub-microsecond phases up to milliseconds-per-phase
// pathologies; beyond the last bound falls into the +Inf bucket.
var phaseBounds = []int64{
	128, 256, 512, 1024, 2048, 4096, 8192, 16384,
	32768, 65536, 262144, 1048576,
}

// NewPhaseProfiler registers the five phase histograms (one family,
// pfair_engine_phase_ns, labelled by phase) and the sample counter in
// reg, sampling one step in every `every` (values < 1 clamp to 1 =
// profile every step). Passing a nil registry creates a private one,
// retrievable via Registry().
func NewPhaseProfiler(reg *Registry, every int64) *PhaseProfiler {
	if reg == nil {
		reg = NewRegistry()
	}
	if every < 1 {
		every = 1
	}
	h := func(phase string) *Histogram {
		return reg.Histogram("pfair_engine_phase_ns",
			`phase="`+phase+`"`,
			"sampled wall-clock nanoseconds per engine phase", phaseBounds)
	}
	return &PhaseProfiler{
		Release:  h("release"),
		Pick:     h("pick"),
		Dispatch: h("dispatch"),
		Account:  h("account"),
		Next:     h("next"),
		Samples:  reg.Counter("pfair_engine_profile_samples_total", "", "engine steps whose phases were profiled"),
		every:    every,
		reg:      reg,
	}
}

// Every returns the sampling interval in engine steps (≥ 1).
func (p *PhaseProfiler) Every() int64 { return p.every }

// Registry returns the registry holding the profiler's instruments.
func (p *PhaseProfiler) Registry() *Registry { return p.reg }

// quantileBound returns the upper bound of the first histogram bucket
// whose cumulative count reaches q·count, as a printable string ("≤N" for
// a finite bound, ">N" for the overflow bucket).
//
//pfair:allowfloat quantile rank arithmetic renders a human report of host wall-clock costs; no scheduling quantity flows from it
func quantileBound(h *Histogram, q float64) string {
	total := h.Count()
	if total == 0 {
		return "-"
	}
	bounds, cum := h.Buckets() // cum[i] counts observations ≤ bounds[i]
	// The q-quantile rank is ⌈q·total⌉ observations.
	need := int64(q * float64(total))
	if float64(need) < q*float64(total) {
		need++
	}
	if need < 1 {
		need = 1
	}
	for i, c := range cum {
		if c >= need {
			if i < len(bounds) {
				return "≤" + itoa(bounds[i])
			}
			break
		}
	}
	return ">" + itoa(bounds[len(bounds)-1])
}

// WriteTable renders the per-phase cost decomposition as a human-readable
// table: observation count, mean, and bucketed p50/p99 per phase, plus a
// total row. Cold path; runs after the simulation.
func (p *PhaseProfiler) WriteTable(w io.Writer) error {
	rows := []struct {
		name string
		h    *Histogram
	}{
		{"release", p.Release}, {"pick", p.Pick}, {"dispatch", p.Dispatch},
		{"account", p.Account}, {"next", p.Next},
	}
	if _, err := fmt.Fprintf(w, "%-10s %10s %12s %12s %12s\n", "phase", "samples", "mean ns", "p50 ns", "p99 ns"); err != nil {
		return err
	}
	var totalSum, totalCount int64
	for _, r := range rows {
		n := r.h.Count()
		mean := "-"
		if n > 0 {
			mean = itoa(r.h.Sum() / n)
		}
		totalSum += r.h.Sum()
		totalCount = n // same per phase: one observation per sampled step
		if _, err := fmt.Fprintf(w, "%-10s %10d %12s %12s %12s\n",
			r.name, n, mean, quantileBound(r.h, 0.50), quantileBound(r.h, 0.99)); err != nil {
			return err
		}
	}
	mean := "-"
	if totalCount > 0 {
		mean = itoa(totalSum / totalCount)
	}
	_, err := fmt.Fprintf(w, "%-10s %10d %12s  (sum of phase means; sampled every %d steps)\n",
		"slot", totalCount, mean, p.every)
	return err
}
