package obs

import (
	"fmt"
	"io"
)

// WriteTimeline writes the recorder's retained events as a
// human-readable slot timeline, one line per event, in emission order:
//
//	[   12] schedule   A#5 → P0
//	[   12] release    C#4
//	[   13] migration  B#3 P1 → P0
//	[   13] miss       D#2 (deadline 10)
//
// The slot column groups naturally because the schedulers emit events in
// slot order. Cold path; allocates freely.
func WriteTimeline(w io.Writer, rec *Recorder) error {
	if d := rec.Dropped(); d > 0 {
		if _, err := fmt.Fprintf(w, "(ring wrapped: %d oldest events dropped)\n", d); err != nil {
			return err
		}
	}
	for _, e := range rec.Events() {
		var err error
		name := rec.TaskName(e.Task)
		switch e.Kind {
		case EvJoin:
			_, err = fmt.Fprintf(w, "[%6d] join       %s (%d/%d)\n", e.Slot, name, e.A, e.B)
		case EvLeave:
			_, err = fmt.Fprintf(w, "[%6d] leave      %s (allocated %d)\n", e.Slot, name, e.A)
		case EvRelease:
			_, err = fmt.Fprintf(w, "[%6d] release    %s#%d\n", e.Slot, name, e.A)
		case EvSchedule:
			_, err = fmt.Fprintf(w, "[%6d] schedule   %s#%d → P%d\n", e.Slot, name, e.A, e.Proc)
		case EvIdle:
			_, err = fmt.Fprintf(w, "[%6d] idle       P%d\n", e.Slot, e.Proc)
		case EvPreempt:
			_, err = fmt.Fprintf(w, "[%6d] preempt    %s#%d (was on P%d)\n", e.Slot, name, e.A, e.Proc)
		case EvMigrate:
			_, err = fmt.Fprintf(w, "[%6d] migration  %s#%d P%d → P%d\n", e.Slot, name, e.B, e.A, e.Proc)
		case EvMiss:
			_, err = fmt.Fprintf(w, "[%6d] miss       %s#%d (deadline %d)\n", e.Slot, name, e.A, e.B)
		case EvTieBreakB:
			_, err = fmt.Fprintf(w, "[%6d] tiebreak-b %s over %s (deadline %d)\n", e.Slot, name, rec.TaskName(int32(e.A)), e.B)
		case EvTieBreakGroup:
			_, err = fmt.Fprintf(w, "[%6d] tiebreak-g %s over %s (deadline %d)\n", e.Slot, name, rec.TaskName(int32(e.A)), e.B)
		case EvLagExtremum:
			_, err = fmt.Fprintf(w, "[%6d] lag-max    %s |lag| = %d/%d\n", e.Slot, name, e.A, e.B)
		case EvReweight:
			_, err = fmt.Fprintf(w, "[%6d] reweight   %s → %d/%d\n", e.Slot, name, e.A, e.B)
		default:
			_, err = fmt.Fprintf(w, "[%6d] %s task=%d proc=%d a=%d b=%d\n", e.Slot, e.Kind, e.Task, e.Proc, e.A, e.B)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
