package obs

import (
	"fmt"
	"io"
)

// This file implements the per-task accounting table: a dense-by-id
// aggregation of the event stream into the quantities the paper's
// evaluation (and the related overhead-aware studies in PAPERS.md)
// compares schedulers by — dispatch counts per CPU, preemptions,
// migrations, response times, tardiness, and exact lag extrema.
//
// The table is a Recorder attachment (SetAccounting): Emit forwards every
// event to Apply before it lands in the ring, so the aggregates cover the
// whole run even when the fixed ring wraps and drops its oldest events.
// Apply is on the schedulers' hot path and follows the package's rules —
// preallocated state, integer arithmetic, no maps, no strings; table
// growth happens once per task (and once per new CPU) on the cold side.
//
// The same Apply is reused off-line by cmd/pfairtrace, which replays the
// events it reconstructs from a trace-JSON file through a fresh
// Accounting — one aggregation, two feeds.

// TaskStats is one task's accounting snapshot. JSON tags make it the
// per-task row of pfairtrace's -json report.
type TaskStats struct {
	ID     int32  `json:"id"`
	Name   string `json:"name"`
	Cost   int64  `json:"cost"`
	Period int64  `json:"period"`
	// JoinSlot is the slot of the task's EvJoin — its admission, or the
	// slot observation was attached if that happened mid-run.
	JoinSlot int64 `json:"joinSlot"`
	// Left and LeaveSlot record an EvLeave departure.
	Left      bool  `json:"left,omitempty"`
	LeaveSlot int64 `json:"leaveSlot,omitempty"`

	// Reweights counts EvReweight events applied to this id — weight
	// changes that took effect under the same identity. (Policies that
	// reweight by leave-and-join under a fresh id, like core, book the
	// change on the new incarnation's row.) Weights lists the weight
	// history: the parameters at join followed by one entry per applied
	// reweight, in effect order.
	Reweights int64          `json:"reweights,omitempty"`
	Weights   []WeightChange `json:"weights,omitempty"`

	// Dispatches counts quanta received; PerCPU splits the count by the
	// processor that executed them (index = CPU). LastCPU is the CPU of
	// the most recent dispatch, −1 before the first.
	Dispatches int64   `json:"dispatches"`
	PerCPU     []int64 `json:"perCPU"`
	LastCPU    int32   `json:"lastCPU"`

	Releases    int64 `json:"releases"`
	Preemptions int64 `json:"preemptions"`
	// Migrations counts dispatches on a CPU different from the previous
	// dispatch's — derived from the EvSchedule stream (last-run-CPU
	// changes), matching core.Stats.Migrations.
	Migrations int64 `json:"migrations"`

	Misses int64 `json:"misses"`
	// MaxTardiness is the largest (slot+1 − deadline) over this task's
	// misses: by how many slots the worst subtask completed late.
	MaxTardiness int64 `json:"maxTardiness"`

	// Response-time aggregates, in slots from a subtask's release to the
	// end of the slot that executed it (so the minimum is 1). Subtasks
	// whose release the trace did not record are not counted.
	RespCount int64 `json:"respCount"`
	RespSum   int64 `json:"respSum"`
	RespMax   int64 `json:"respMax"`

	// TieBreakWins counts deadline ties this task won by the b-bit or
	// group-deadline rule (EvTieBreakB/EvTieBreakGroup with this task as
	// winner).
	TieBreakWins int64 `json:"tieBreakWins"`

	// LagMaxNum/LagDen and LagMinNum/LagDen are the exact signed lag
	// extrema as integer pairs (LagDen = the task's period; both zero
	// until the task's parameters are known). Lag is evaluated at every
	// slot boundary: lag(τ) = (Cost·(τ−JoinSlot) − dispatched·Period) /
	// Period, which is piecewise linear in τ with slope Cost/Period > 0
	// between allocations and a −1 step at each allocation — so checking
	// the boundaries immediately before and after every dispatch (plus
	// join, leave, and the final horizon) visits every extremum.
	LagMaxNum int64 `json:"lagMaxNum"`
	LagMinNum int64 `json:"lagMinNum"`
	LagDen    int64 `json:"lagDen"`
}

// WeightChange is one entry of a task's weight history: the parameters
// that took effect at Slot (the join itself, or an applied reweight).
type WeightChange struct {
	Slot   int64 `json:"slot"`
	Cost   int64 `json:"cost"`
	Period int64 `json:"period"`
}

// MeanResponseTimes returns the task's mean response time as the exact
// pair (RespSum, RespCount); callers divide at display time, per the
// repository's no-stored-ratios rule.
func (ts *TaskStats) MeanResponseTimes() (sum, count int64) {
	return ts.RespSum, ts.RespCount
}

// taskAcct is the mutable per-task accumulator behind a TaskStats row.
type taskAcct struct {
	TaskStats
	// pendSub/pendRel hold the most recently released, not yet scheduled
	// subtask and its release slot, for response-time measurement.
	// pendSub == 0 means none (subtask indices are 1-based).
	pendSub int64
	pendRel int64
	// dispBase is the dispatch count when the current lag reference
	// began: zero from the join, reset by an in-place EvReweight so the
	// fluid reference restarts at the new rate.
	dispBase int64
	known    bool // an event mentioned this id
}

// Accounting aggregates a scheduler event stream into per-task rows.
// Attach one to a Recorder with SetAccounting before the run, or feed
// reconstructed events through Apply directly (cmd/pfairtrace).
type Accounting struct {
	tasks  []*taskAcct // dense by task id
	events int64       // events consumed
	procs  int32       // max CPU index seen, +1
}

// NewAccounting returns an empty table.
func NewAccounting() *Accounting {
	return &Accounting{}
}

// Events returns the number of events consumed.
func (a *Accounting) Events() int64 { return a.events }

// Procs returns the number of CPUs seen in the stream (max index + 1).
func (a *Accounting) Procs() int { return int(a.procs) }

// get returns the accumulator for id, or nil when the table has no row
// yet. Hot path: one bounds check and one load.
//
//pfair:hotpath
func (a *Accounting) get(id int32) *taskAcct {
	if id < 0 || int(id) >= len(a.tasks) {
		return nil
	}
	return a.tasks[id]
}

// grow creates (and, if needed, makes room for) the accumulator of id.
// Runs once per task, never in steady state.
//
//pfair:allowalloc table growth runs once per task id, at its first event, not in steady state
func (a *Accounting) grow(id int32) *taskAcct {
	for int(id) >= len(a.tasks) {
		a.tasks = append(a.tasks, nil)
	}
	en := &taskAcct{}
	en.ID = id
	en.LastCPU = -1
	a.tasks[id] = en
	return en
}

// growCPU extends en's per-CPU dispatch vector to include cpu. Runs once
// per (task, new CPU) pair.
//
//pfair:hotpath
func (a *Accounting) growCPU(en *taskAcct, cpu int32) {
	for int32(len(en.PerCPU)) <= cpu {
		en.PerCPU = append(en.PerCPU, 0)
	}
}

// ensure returns the accumulator for id, creating it on first sight.
//
//pfair:hotpath
func (a *Accounting) ensure(id int32) *taskAcct {
	en := a.get(id)
	if en == nil {
		en = a.grow(id)
	}
	en.known = true
	return en
}

// recordWeight appends one weight-history entry (amortized growth into
// the entry's own slice, once per join or reweight).
//
//pfair:hotpath
func (en *taskAcct) recordWeight(slot, cost, period int64) {
	en.Weights = append(en.Weights, WeightChange{Slot: slot, Cost: cost, Period: period})
}

// lagCandidate folds the signed lag numerator at slot boundary τ into
// en's extrema, given the dispatch count at τ.
//
//pfair:hotpath
func (en *taskAcct) lagCandidate(tau, dispatched int64) {
	if en.Period <= 0 {
		return
	}
	num := en.Cost*(tau-en.JoinSlot) - (dispatched-en.dispBase)*en.Period
	if num > en.LagMaxNum {
		en.LagMaxNum = num
	}
	if num < en.LagMinNum {
		en.LagMinNum = num
	}
}

// Apply folds one event into the table. It is invoked by Recorder.Emit
// for every event when attached, so it must stay allocation-free in
// steady state; growth is confined to the first sighting of a task or
// CPU.
//
//pfair:hotpath
func (a *Accounting) Apply(e Event) {
	a.events++
	if e.Proc >= a.procs {
		a.procs = e.Proc + 1
	}
	if e.Task < 0 {
		return // EvIdle and other taskless events carry no per-task fact
	}
	switch e.Kind {
	case EvJoin:
		en := a.ensure(e.Task)
		en.Cost, en.Period = e.A, e.B
		en.JoinSlot = e.Slot
		en.LagDen = e.B
		// Lag is zero at join; the extrema start there.
		en.LagMaxNum, en.LagMinNum = 0, 0
		en.recordWeight(e.Slot, e.A, e.B)
	case EvReweight:
		en := a.ensure(e.Task)
		// An in-place weight change: close the old fluid reference at
		// this boundary, then restart it at the new rate — lag is zero
		// again at the instant the change lands, and the extrema restart
		// with it (they are numerators over the new LagDen).
		en.lagCandidate(e.Slot, en.Dispatches)
		en.Reweights++
		en.Cost, en.Period = e.A, e.B
		en.JoinSlot = e.Slot
		en.LagDen = e.B
		en.dispBase = en.Dispatches
		en.LagMaxNum, en.LagMinNum = 0, 0
		en.recordWeight(e.Slot, e.A, e.B)
	case EvRelease:
		en := a.ensure(e.Task)
		en.Releases++
		en.pendSub = e.A
		en.pendRel = e.Slot
	case EvSchedule:
		en := a.ensure(e.Task)
		// Lag peaks immediately before an allocation and dips immediately
		// after it: fold both boundaries of this slot.
		en.lagCandidate(e.Slot, en.Dispatches)
		en.Dispatches++
		en.lagCandidate(e.Slot+1, en.Dispatches)
		if en.LastCPU >= 0 && en.LastCPU != e.Proc {
			en.Migrations++
		}
		en.LastCPU = e.Proc
		if int32(len(en.PerCPU)) <= e.Proc {
			a.growCPU(en, e.Proc)
		}
		en.PerCPU[e.Proc]++
		if en.pendSub != 0 && en.pendSub == e.A {
			resp := e.Slot + 1 - en.pendRel
			en.RespCount++
			en.RespSum += resp
			if resp > en.RespMax {
				en.RespMax = resp
			}
			en.pendSub = 0
		}
	case EvPreempt:
		a.ensure(e.Task).Preemptions++
	case EvMiss:
		en := a.ensure(e.Task)
		en.Misses++
		if tard := e.Slot + 1 - e.B; tard > en.MaxTardiness {
			en.MaxTardiness = tard
		}
	case EvLeave:
		en := a.ensure(e.Task)
		en.Left = true
		en.LeaveSlot = e.Slot
		en.lagCandidate(e.Slot, en.Dispatches)
	case EvTieBreakB, EvTieBreakGroup:
		a.ensure(e.Task).TieBreakWins++
	case EvMigrate, EvLagExtremum, EvIdle, EvNone:
		// EvMigrate is derived from the EvSchedule stream (LastCPU), and
		// EvLagExtremum from the dispatch boundaries; counting the
		// narrated events too would double-book.
	}
}

// SetName records the display name for id (cold path). Recorder.
// RegisterTask forwards here when an Accounting is attached.
func (a *Accounting) SetName(id int32, name string) {
	if id < 0 {
		return
	}
	a.ensure(id).Name = name
}

// Finalize folds the trailing lag candidate at the horizon for every
// task still in the system — lag grows linearly after the last dispatch,
// so the run's end is the last place an extremum can hide. Call once
// after the final slot (idempotent for a fixed horizon).
func (a *Accounting) Finalize(horizon int64) {
	for _, en := range a.tasks {
		if en == nil || !en.known || en.Left {
			continue
		}
		en.lagCandidate(horizon, en.Dispatches)
	}
}

// Len returns the number of tasks in the table.
func (a *Accounting) Len() int {
	n := 0
	for _, en := range a.tasks {
		if en != nil && en.known {
			n++
		}
	}
	return n
}

// Snapshot returns a deep copy of every known task row in id order.
func (a *Accounting) Snapshot() []TaskStats {
	out := make([]TaskStats, 0, len(a.tasks))
	for _, en := range a.tasks {
		if en == nil || !en.known {
			continue
		}
		ts := en.TaskStats
		ts.PerCPU = append([]int64(nil), en.PerCPU...)
		ts.Weights = append([]WeightChange(nil), en.Weights...)
		if ts.Name == "" {
			ts.Name = "task#" + itoa(int64(ts.ID))
		}
		out = append(out, ts)
	}
	return out
}

// WritePrometheus writes the table in Prometheus text exposition format
// with task (and, for dispatches, cpu) labels. The pfair_acct_* families
// are disjoint from SchedulerMetrics' pfair_task_* families, so both can
// serve from one endpoint.
func (a *Accounting) WritePrometheus(w io.Writer) error {
	snap := a.Snapshot()
	reg := NewRegistry()
	// Register family-major so each family's series are contiguous.
	for _, ts := range snap {
		lab := `task="` + EscapeLabel(ts.Name) + `"`
		for cpu, n := range ts.PerCPU {
			if n == 0 {
				continue
			}
			reg.Counter("pfair_acct_dispatches_total", lab+`,cpu="`+itoa(int64(cpu))+`"`,
				"quanta dispatched, per task and executing CPU").Add(n)
		}
	}
	type col struct {
		family, help string
		kind         MetricKind
		get          func(ts *TaskStats) int64
	}
	cols := []col{
		{"pfair_acct_releases_total", "subtask releases, per task", KindCounter, func(ts *TaskStats) int64 { return ts.Releases }},
		{"pfair_acct_preemptions_total", "preemptions, per task", KindCounter, func(ts *TaskStats) int64 { return ts.Preemptions }},
		{"pfair_acct_migrations_total", "dispatches on a different CPU than the previous one, per task", KindCounter, func(ts *TaskStats) int64 { return ts.Migrations }},
		{"pfair_acct_deadline_misses_total", "deadline misses, per task", KindCounter, func(ts *TaskStats) int64 { return ts.Misses }},
		{"pfair_acct_tiebreak_wins_total", "deadline ties won by the b-bit or group-deadline rule, per task", KindCounter, func(ts *TaskStats) int64 { return ts.TieBreakWins }},
		{"pfair_acct_reweights_total", "weight changes applied in place, per task", KindCounter, func(ts *TaskStats) int64 { return ts.Reweights }},
		{"pfair_acct_response_slots_sum", "sum of measured subtask response times, in slots", KindCounter, func(ts *TaskStats) int64 { return ts.RespSum }},
		{"pfair_acct_response_slots_count", "subtask response times measured", KindCounter, func(ts *TaskStats) int64 { return ts.RespCount }},
		{"pfair_acct_response_max_slots", "largest subtask response time, in slots", KindGauge, func(ts *TaskStats) int64 { return ts.RespMax }},
		{"pfair_acct_max_tardiness_slots", "largest deadline overrun, in slots", KindGauge, func(ts *TaskStats) int64 { return ts.MaxTardiness }},
		{"pfair_acct_lag_max_num", "numerator of the maximum signed lag (denominator = the task's period)", KindGauge, func(ts *TaskStats) int64 { return ts.LagMaxNum }},
		{"pfair_acct_lag_min_num", "numerator of the minimum signed lag (denominator = the task's period)", KindGauge, func(ts *TaskStats) int64 { return ts.LagMinNum }},
	}
	for _, c := range cols {
		for i := range snap {
			ts := &snap[i]
			lab := `task="` + EscapeLabel(ts.Name) + `"`
			switch c.kind {
			case KindGauge:
				reg.Gauge(c.family, lab, c.help).Set(c.get(ts))
			default:
				reg.Counter(c.family, lab, c.help).Add(c.get(ts))
			}
		}
	}
	return reg.WritePrometheus(w)
}

// WriteTaskTable writes the rows as a human-readable table — the
// per-task summary pfairsim -taskstats and pfairtrace share. Response
// means are rendered as exact sum/count pairs; everything else is a
// plain integer.
func WriteTaskTable(w io.Writer, stats []TaskStats) error {
	if _, err := fmt.Fprintf(w, "%-12s %9s %10s %8s %7s %5s %6s %6s %8s %6s %5s %14s\n",
		"task", "cost/per", "dispatches", "releases", "preempt", "migr", "tbwins", "misses", "max-tard", "resp", "max", "lag[min,max]"); err != nil {
		return err
	}
	for i := range stats {
		ts := &stats[i]
		resp := "-"
		if ts.RespCount > 0 {
			resp = itoa(ts.RespSum) + "/" + itoa(ts.RespCount)
		}
		lag := "-"
		if ts.LagDen > 0 {
			lag = "[" + itoa(ts.LagMinNum) + "," + itoa(ts.LagMaxNum) + "]/" + itoa(ts.LagDen)
		}
		name := ts.Name
		if ts.Left {
			name += "†"
		}
		if _, err := fmt.Fprintf(w, "%-12s %9s %10d %8d %7d %5d %6d %6d %8d %6s %5d %14s\n",
			name, itoa(ts.Cost)+"/"+itoa(ts.Period),
			ts.Dispatches, ts.Releases, ts.Preemptions, ts.Migrations,
			ts.TieBreakWins, ts.Misses, ts.MaxTardiness, resp, ts.RespMax, lag); err != nil {
			return err
		}
	}
	return nil
}
