package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

// decodeTrace unmarshals exporter output into the loose map form a
// validator (or Perfetto) sees.
func decodeTrace(t *testing.T, raw []byte) []map[string]any {
	t.Helper()
	var f struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", f.DisplayTimeUnit)
	}
	return f.TraceEvents
}

func TestWriteChromeTrace(t *testing.T) {
	r := NewRecorder(256)
	r.RegisterTask(0, "A")
	r.RegisterTask(1, "B")
	// A runs slots 0-2 on P0 (one merged span), migrates to P1 for slot
	// 3; B releases, runs slot 1 on P1, misses at slot 4.
	r.Emit(Event{Slot: 0, Kind: EvSchedule, Task: 0, Proc: 0, A: 1})
	r.Emit(Event{Slot: 1, Kind: EvRelease, Task: 1, Proc: -1, A: 1})
	r.Emit(Event{Slot: 1, Kind: EvSchedule, Task: 0, Proc: 0, A: 2})
	r.Emit(Event{Slot: 1, Kind: EvSchedule, Task: 1, Proc: 1, A: 1})
	r.Emit(Event{Slot: 2, Kind: EvSchedule, Task: 0, Proc: 0, A: 3})
	r.Emit(Event{Slot: 3, Kind: EvMigrate, Task: 0, Proc: 1, A: 0, B: 4})
	r.Emit(Event{Slot: 3, Kind: EvSchedule, Task: 0, Proc: 1, A: 4})
	r.Emit(Event{Slot: 4, Kind: EvMiss, Task: 1, Proc: -1, A: 2, B: 4})
	r.Emit(Event{Slot: 4, Kind: EvTieBreakB, Task: 0, Proc: -1, A: 1, B: 6})

	var b bytes.Buffer
	if err := WriteChromeTrace(&b, r, ChromeTraceOptions{Procs: 2}); err != nil {
		t.Fatal(err)
	}
	events := decodeTrace(t, b.Bytes())

	type span struct{ ts, dur, pid, tid float64 }
	var spans []span
	names := map[string]int{}
	for _, e := range events {
		ph, _ := e["ph"].(string)
		name, _ := e["name"].(string)
		names[name]++
		if ph == "X" {
			ts, _ := e["ts"].(float64)
			dur, _ := e["dur"].(float64)
			pid, _ := e["pid"].(float64)
			tid, _ := e["tid"].(float64)
			spans = append(spans, span{ts, dur, pid, tid})
		}
	}

	// Thread metadata for both pid groups and both CPU lanes.
	for _, want := range []string{"process_name", "thread_name", "release", "deadline-miss", "migration", "tiebreak-bbit"} {
		if names[want] == 0 {
			t.Errorf("no %q event in trace", want)
		}
	}

	// A's slots 0-2 on P0 must merge into one 3-slot span on the
	// processor lane (pid 0, tid 0) and mirror on the task lane (pid 1).
	foundProc, foundTask := false, false
	for _, s := range spans {
		if s.ts == 0 && s.dur == 3000 && s.pid == 0 && s.tid == 0 {
			foundProc = true
		}
		if s.ts == 0 && s.dur == 3000 && s.pid == 1 && s.tid == 0 {
			foundTask = true
		}
	}
	if !foundProc {
		t.Errorf("merged 3-slot span missing on processor lane; spans: %+v", spans)
	}
	if !foundTask {
		t.Errorf("merged 3-slot span missing on task lane; spans: %+v", spans)
	}

	// The migration slot must be a separate 1-slot span on P1.
	found := false
	for _, s := range spans {
		if s.ts == 3000 && s.dur == 1000 && s.pid == 0 && s.tid == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("post-migration span missing; spans: %+v", spans)
	}
}

func TestWriteChromeTraceDeterministic(t *testing.T) {
	build := func() []byte {
		r := NewRecorder(64)
		r.RegisterTask(0, "A")
		r.RegisterTask(1, "B")
		r.Emit(Event{Slot: 0, Kind: EvSchedule, Task: 0, Proc: 0, A: 1})
		r.Emit(Event{Slot: 0, Kind: EvSchedule, Task: 1, Proc: 1, A: 1})
		r.Emit(Event{Slot: 1, Kind: EvMiss, Task: 1, Proc: -1, A: 1, B: 1})
		var b bytes.Buffer
		if err := WriteChromeTrace(&b, r, ChromeTraceOptions{}); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Error("identical recordings exported different bytes")
	}
}

func TestChromeTraceCustomSlotMicros(t *testing.T) {
	r := NewRecorder(16)
	r.RegisterTask(0, "A")
	r.Emit(Event{Slot: 2, Kind: EvSchedule, Task: 0, Proc: 0, A: 1})
	var b bytes.Buffer
	if err := WriteChromeTrace(&b, r, ChromeTraceOptions{SlotMicros: 10}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range decodeTrace(t, b.Bytes()) {
		if ph, _ := e["ph"].(string); ph == "X" {
			if ts, _ := e["ts"].(float64); ts == 20 {
				found = true
			}
		}
	}
	if !found {
		t.Error("custom SlotMicros not applied to span timestamps")
	}
}
