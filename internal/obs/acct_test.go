package obs

import (
	"strings"
	"testing"
)

// feed applies a canned event stream for a single task of weight 2/5
// joining at slot 0: releases at 0 and 2, dispatches at slots 1 and 3 on
// different CPUs, a preemption, and a miss detected at slot 6.
func feedCanned(a *Accounting) {
	a.SetName(0, "A")
	for _, e := range []Event{
		{Slot: 0, Kind: EvJoin, Task: 0, Proc: -1, A: 2, B: 5},
		{Slot: 0, Kind: EvRelease, Task: 0, Proc: -1, A: 1, B: 3},
		{Slot: 1, Kind: EvSchedule, Task: 0, Proc: 0, A: 1},
		{Slot: 2, Kind: EvRelease, Task: 0, Proc: -1, A: 2, B: 5},
		{Slot: 3, Kind: EvSchedule, Task: 0, Proc: 1, A: 2},
		{Slot: 4, Kind: EvPreempt, Task: 0, Proc: 1, A: 3},
		{Slot: 6, Kind: EvMiss, Task: 0, Proc: -1, A: 3, B: 5},
	} {
		a.Apply(e)
	}
}

func TestAccountingAggregates(t *testing.T) {
	a := NewAccounting()
	feedCanned(a)
	a.Finalize(10)

	snap := a.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("Snapshot has %d rows, want 1", len(snap))
	}
	ts := snap[0]
	if ts.Name != "A" || ts.Cost != 2 || ts.Period != 5 {
		t.Errorf("identity row wrong: %+v", ts)
	}
	if ts.Dispatches != 2 || ts.Releases != 2 || ts.Preemptions != 1 || ts.Misses != 1 {
		t.Errorf("counts wrong: %+v", ts)
	}
	if ts.Migrations != 1 {
		t.Errorf("CPU 0 → CPU 1 must count one migration, got %d", ts.Migrations)
	}
	if len(ts.PerCPU) != 2 || ts.PerCPU[0] != 1 || ts.PerCPU[1] != 1 {
		t.Errorf("PerCPU = %v, want [1 1]", ts.PerCPU)
	}
	// Subtask 1: released slot 0, ran slot 1 → response 2. Subtask 2:
	// released slot 2, ran slot 3 → response 2.
	if ts.RespCount != 2 || ts.RespSum != 4 || ts.RespMax != 2 {
		t.Errorf("response aggregates wrong: count %d sum %d max %d", ts.RespCount, ts.RespSum, ts.RespMax)
	}
	// Miss detected in slot 6 against deadline 5: tardiness 6+1−5 = 2.
	if ts.MaxTardiness != 2 {
		t.Errorf("MaxTardiness = %d, want 2", ts.MaxTardiness)
	}
	if a.Procs() != 2 {
		t.Errorf("Procs = %d, want 2", a.Procs())
	}
}

// TestAccountingLagExtrema pins the exact lag arithmetic: for weight 2/5
// with dispatches at slots 1 and 3, lag(τ)·5 = 2τ − 5·dispatched(τ). The
// boundary candidates are 0 (join), 2 (before the slot-1 dispatch), −1
// (after it), 1 (before the slot-3 dispatch), −2 (after it): extrema
// [−2,2]. Finalize at a late horizon then raises the max as lag grows
// linearly with no further dispatches.
func TestAccountingLagExtrema(t *testing.T) {
	a := NewAccounting()
	feedCanned(a)
	if ts := a.Snapshot()[0]; ts.LagMaxNum != 2 || ts.LagMinNum != -2 || ts.LagDen != 5 {
		t.Errorf("pre-finalize extrema [%d,%d]/%d, want [-2,2]/5", ts.LagMinNum, ts.LagMaxNum, ts.LagDen)
	}
	a.Finalize(10)
	// lag(10)·5 = 2·10 − 2·5 = 10.
	if ts := a.Snapshot()[0]; ts.LagMaxNum != 10 {
		t.Errorf("post-finalize LagMaxNum = %d, want 10", ts.LagMaxNum)
	}
	// Finalize is idempotent for a fixed horizon.
	a.Finalize(10)
	if ts := a.Snapshot()[0]; ts.LagMaxNum != 10 {
		t.Errorf("Finalize not idempotent: LagMaxNum = %d", ts.LagMaxNum)
	}
}

// TestAccountingViaRecorder: SetAccounting must see every emitted event —
// including the ones a wrapping ring drops — and RegisterTask must
// forward names both ways across the attach.
func TestAccountingViaRecorder(t *testing.T) {
	rec := NewRecorder(4) // tiny ring: wraps immediately
	rec.RegisterTask(0, "before")
	acct := NewAccounting()
	rec.SetAccounting(acct)
	rec.RegisterTask(1, "after")
	for i := int64(0); i < 10; i++ {
		rec.Emit(Event{Slot: i, Kind: EvSchedule, Task: 0, Proc: 0, A: i + 1})
	}
	if rec.Dropped() != 6 {
		t.Fatalf("ring of 4 kept %d of 10: dropped %d, want 6", len(rec.Events()), rec.Dropped())
	}
	if acct.Events() != 10 {
		t.Errorf("accounting consumed %d events, want all 10 despite the wrap", acct.Events())
	}
	snap := acct.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("Snapshot has %d rows, want 2 (both registered tasks)", len(snap))
	}
	if snap[0].Name != "before" || snap[1].Name != "after" {
		t.Errorf("names not forwarded across attach: %q, %q", snap[0].Name, snap[1].Name)
	}
	if snap[0].Dispatches != 10 {
		t.Errorf("dispatches = %d, want 10", snap[0].Dispatches)
	}
}

func TestAccountingLeave(t *testing.T) {
	a := NewAccounting()
	a.Apply(Event{Slot: 0, Kind: EvJoin, Task: 0, Proc: -1, A: 1, B: 2})
	a.Apply(Event{Slot: 0, Kind: EvSchedule, Task: 0, Proc: 0, A: 1})
	a.Apply(Event{Slot: 4, Kind: EvLeave, Task: 0, Proc: -1, A: 1})
	ts := a.Snapshot()[0]
	if !ts.Left || ts.LeaveSlot != 4 {
		t.Errorf("leave not recorded: %+v", ts)
	}
	// lag(4)·2 = 1·4 − 1·2 = 2, folded by the leave itself.
	if ts.LagMaxNum != 2 {
		t.Errorf("leave did not fold the trailing lag candidate: max %d, want 2", ts.LagMaxNum)
	}
	// Finalize must not extend a departed task past its leave.
	a.Finalize(100)
	if got := a.Snapshot()[0].LagMaxNum; got != 2 {
		t.Errorf("Finalize moved a departed task's extremum to %d", got)
	}
}

// TestAccountingPrometheus checks the exposition: task and cpu labels,
// disjoint pfair_acct_* namespace, escaping of hostile task names.
func TestAccountingPrometheus(t *testing.T) {
	a := NewAccounting()
	feedCanned(a)
	a.SetName(0, "evil\"name\\with\nstuff")
	var b strings.Builder
	if err := a.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`pfair_acct_dispatches_total{task="evil\"name\\with\nstuff",cpu="0"} 1`,
		`pfair_acct_dispatches_total{task="evil\"name\\with\nstuff",cpu="1"} 1`,
		`pfair_acct_releases_total{task="evil\"name\\with\nstuff"} 2`,
		`pfair_acct_deadline_misses_total`,
		`pfair_acct_lag_max_num`,
		"# TYPE pfair_acct_dispatches_total counter",
		"# TYPE pfair_acct_lag_min_num gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "pfair_task_") {
		t.Error("accounting exposition leaked into the pfair_task_* namespace")
	}
}

func TestWriteTaskTableRendering(t *testing.T) {
	a := NewAccounting()
	feedCanned(a)
	a.Apply(Event{Slot: 8, Kind: EvJoin, Task: 1, Proc: -1, A: 1, B: 3})
	a.Apply(Event{Slot: 9, Kind: EvLeave, Task: 1, Proc: -1, A: 0})
	a.SetName(1, "B")
	var b strings.Builder
	if err := WriteTaskTable(&b, a.Snapshot()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "A") || !strings.Contains(out, "2/5") {
		t.Errorf("table missing task A identity:\n%s", out)
	}
	if !strings.Contains(out, "B†") {
		t.Errorf("departed task not marked with †:\n%s", out)
	}
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Errorf("table has %d lines, want header + 2 rows", lines)
	}
}
