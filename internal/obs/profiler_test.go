package obs

import (
	"strings"
	"testing"
)

func TestNewPhaseProfilerRegistration(t *testing.T) {
	reg := NewRegistry()
	p := NewPhaseProfiler(reg, 8)
	if p.Registry() != reg {
		t.Error("Registry() does not return the registry passed in")
	}
	if p.Every() != 8 {
		t.Errorf("Every() = %d, want 8", p.Every())
	}
	p.Pick.Observe(300)
	p.Samples.Inc()
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE pfair_engine_phase_ns histogram",
		`pfair_engine_phase_ns_bucket{phase="pick",le="512"} 1`,
		`pfair_engine_phase_ns_count{phase="release"} 0`,
		`pfair_engine_phase_ns_count{phase="dispatch"} 0`,
		`pfair_engine_phase_ns_count{phase="account"} 0`,
		`pfair_engine_phase_ns_count{phase="next"} 0`,
		"pfair_engine_profile_samples_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestNewPhaseProfilerDefaults(t *testing.T) {
	p := NewPhaseProfiler(nil, 0)
	if p.Registry() == nil {
		t.Error("nil registry was not replaced with a private one")
	}
	if p.Every() != 1 {
		t.Errorf("every=0 must clamp to 1, got %d", p.Every())
	}
}

func TestPhaseProfilerWriteTable(t *testing.T) {
	p := NewPhaseProfiler(nil, 4)
	// 100 samples: 99 fast observations in the ≤256 bucket and one slow
	// outlier per phase, so p50 and p99 land in different buckets.
	for i := 0; i < 99; i++ {
		for _, h := range []*Histogram{p.Release, p.Pick, p.Dispatch, p.Account, p.Next} {
			h.Observe(200)
		}
	}
	for _, h := range []*Histogram{p.Release, p.Pick, p.Dispatch, p.Account, p.Next} {
		h.Observe(100000)
	}
	p.Samples.Add(100)

	var b strings.Builder
	if err := p.WriteTable(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, phase := range []string{"release", "pick", "dispatch", "account", "next", "slot"} {
		if !strings.Contains(out, phase) {
			t.Errorf("table missing row %q:\n%s", phase, out)
		}
	}
	if !strings.Contains(out, "≤256") {
		t.Errorf("p50 should land in the ≤256 bucket:\n%s", out)
	}
	// need(0.99·100) = 99 is reached by the ≤256 bucket's cumulative count.
	if !strings.Contains(out, "sampled every 4 steps") {
		t.Errorf("total row missing the sampling interval:\n%s", out)
	}
	// mean = (99·200 + 100000)/100 = 1198 per phase.
	if !strings.Contains(out, "1198") {
		t.Errorf("table missing the per-phase mean 1198:\n%s", out)
	}
}

func TestQuantileBound(t *testing.T) {
	p := NewPhaseProfiler(nil, 1)
	h := p.Pick
	if got := quantileBound(h, 0.5); got != "-" {
		t.Errorf("empty histogram quantile = %q, want \"-\"", got)
	}
	h.Observe(100)     // ≤128
	h.Observe(2000000) // beyond the last bound
	if got := quantileBound(h, 0.5); got != "≤128" {
		t.Errorf("p50 = %q, want ≤128", got)
	}
	if got := quantileBound(h, 0.99); got != ">1048576" {
		t.Errorf("p99 = %q, want >1048576 (overflow bucket)", got)
	}
}
