// Package obs is the observability layer shared by every scheduler in
// this repository: a slot-level trace recorder, a metrics registry, and
// exporters (Chrome trace-event JSON for Perfetto, Prometheus text,
// expvar, and a human-readable timeline).
//
// The paper's entire argument rests on measuring scheduling behaviour —
// migrations, preemptions, lag excursions, quantum overheads — so the
// instrumented path must not distort the thing it measures. Two design
// rules follow:
//
//   - Recording is allocation-free. The recorder is a preallocated ring
//     buffer of fixed-size value events; emitting one is two stores and
//     an increment. Counters, gauges, and histogram buckets are
//     preallocated at registration; updating one is an integer add.
//     BenchmarkStepAllocsObserved pins 0 allocs/op with a live recorder
//     and metrics attached, and the hotpath analyzer checks the static
//     side.
//   - Recording is nil-guarded, not interface-dispatched. Schedulers
//     hold a concrete *Recorder (nil when unobserved) and wrap every
//     emission in `if rec != nil`. A nil interface would still cost an
//     itab check plus preclude inlining, and a no-op implementation
//     would still evaluate event arguments; the nil pointer guard makes
//     the uninstrumented path a single predictable branch. The hotpath
//     analyzer enforces the guard (see internal/lint).
//
// Identity is by small integer task IDs assigned at registration
// (cold path); names are resolved only at export time.
package obs

// EventKind discriminates trace events. The zero value is EvNone so an
// unwritten ring slot is distinguishable from any real event.
type EventKind uint8

const (
	// EvNone marks an empty ring slot; never emitted.
	EvNone EventKind = iota
	// EvJoin: a task was admitted. A = cost, B = period.
	EvJoin
	// EvLeave: a task departed. A = total quanta it was allocated.
	EvLeave
	// EvRelease: subtask A of Task became eligible (entered the ready
	// queue).
	EvRelease
	// EvSchedule: subtask A of Task received the quantum of slot Slot on
	// processor Proc.
	EvSchedule
	// EvIdle: processor Proc received no work in slot Slot.
	EvIdle
	// EvPreempt: Task ran in slot Slot−1, has an in-progress job, and was
	// not selected for slot Slot. A = subtask, Proc = processor it lost.
	EvPreempt
	// EvMigrate: Task was placed on processor Proc having last run on
	// processor A. B = subtask.
	EvMigrate
	// EvMiss: subtask A of Task was detected past its deadline B in slot
	// Slot (it runs tardily in Slot, or never — see core.Miss).
	EvMiss
	// EvTieBreakB: a deadline tie at deadline B was decided by the PD²
	// b-bit comparison; Task won against task id A.
	EvTieBreakB
	// EvTieBreakGroup: a deadline tie at deadline B was decided by the
	// group-deadline comparison; Task won against task id A.
	EvTieBreakGroup
	// EvLagExtremum: Task reached a new maximum |lag| of A/B (numerator
	// A over denominator B = the task's period).
	EvLagExtremum
	// EvReweight: Task's weight change took effect at Slot. A = the new
	// cost, B = the new period. Emitted by the admission plane at the
	// boundary the change lands on; for policies that model reweighting
	// as leave-and-join under a fresh id (core), it carries the new
	// incarnation's id and follows its EvJoin at the same slot.
	EvReweight

	numEventKinds = iota
)

var eventKindNames = [numEventKinds]string{
	EvNone:          "none",
	EvJoin:          "join",
	EvLeave:         "leave",
	EvRelease:       "release",
	EvSchedule:      "schedule",
	EvIdle:          "idle",
	EvPreempt:       "preempt",
	EvMigrate:       "migrate",
	EvMiss:          "deadline-miss",
	EvTieBreakB:     "tiebreak-bbit",
	EvTieBreakGroup: "tiebreak-group",
	EvLagExtremum:   "lag-extremum",
	EvReweight:      "reweight",
}

func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// Event is one fixed-size trace record. Slot is the scheduling slot (or
// tick, for the variable-quantum and event-driven simulators); Task and
// Proc are −1 when not applicable; A and B carry kind-specific payload
// documented on each EventKind.
type Event struct {
	Slot int64
	A, B int64
	Task int32
	Proc int32
	Kind EventKind
}

// DefaultRingCapacity is the ring size NewRecorder uses when given a
// non-positive capacity: large enough for several hyperperiods of a
// typical task set, small enough (~2.5 MiB) to preallocate casually.
const DefaultRingCapacity = 1 << 16

// Recorder is a preallocated ring buffer of trace events. When the ring
// wraps, the oldest events are overwritten: a recorder sized below the
// run length keeps the most recent window, which is what post-mortem
// debugging wants. Emit never allocates and never fails.
//
// A Recorder is not safe for concurrent use; each scheduler instance
// owns its own (the parallel experiment harness runs one scheduler —
// hence one recorder — per goroutine).
type Recorder struct {
	buf  []Event
	mask uint64
	n    uint64 // total events ever emitted

	names []string // task id → name, registration is cold-path

	// acct, when attached, consumes every event in-line before it lands
	// in the ring, so aggregates cover the whole run even after the ring
	// wraps. Concrete pointer, nil-guarded, per the package rules.
	acct *Accounting
}

// NewRecorder returns a recorder whose ring holds at least capacity
// events (rounded up to a power of two so Emit can mask instead of
// dividing). A non-positive capacity selects DefaultRingCapacity.
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	size := 1
	for size < capacity {
		size <<= 1
	}
	return &Recorder{buf: make([]Event, size), mask: uint64(size - 1)}
}

// Emit appends e to the ring, overwriting the oldest event once the ring
// is full. It is the only recorder method on the schedulers' hot path.
//
//pfair:hotpath
func (r *Recorder) Emit(e Event) {
	r.buf[r.n&r.mask] = e
	r.n++
	if a := r.acct; a != nil {
		a.Apply(e)
	}
}

// SetAccounting attaches (or, with nil, detaches) a per-task accounting
// / table: every subsequent Emit forwards its event to acct.Apply, and
// task registrations forward their names. Names already registered are
// copied over; events already emitted are not replayed (attach before
// the run — the table aggregates from attachment on). Cold path.
func (r *Recorder) SetAccounting(acct *Accounting) {
	r.acct = acct
	if acct == nil {
		return
	}
	for id, name := range r.names {
		if name != "" {
			acct.SetName(int32(id), name)
		}
	}
}

// Accounting returns the attached accounting table, or nil.
func (r *Recorder) Accounting() *Accounting { return r.acct }

// RegisterTask associates a task id (assigned by the scheduler) with a
// display name, reporting whether the id was previously unknown (so
// callers can emit a join event exactly once per recorder and task).
// Registration may happen at any time before export and is idempotent; it
// is never on the hot path.
func (r *Recorder) RegisterTask(id int32, name string) bool {
	if id < 0 {
		return false
	}
	fresh := int(id) >= len(r.names) || r.names[id] == ""
	for int(id) >= len(r.names) {
		r.names = append(r.names, "")
	}
	r.names[id] = name
	if a := r.acct; a != nil {
		a.SetName(id, name)
	}
	return fresh
}

// TaskName resolves a task id to its registered name, or a placeholder
// for ids never registered.
func (r *Recorder) TaskName(id int32) string {
	if id >= 0 && int(id) < len(r.names) && r.names[id] != "" {
		return r.names[id]
	}
	if id < 0 {
		return ""
	}
	return "task#" + itoa(int64(id))
}

// TaskIDs returns every registered task id in ascending order.
func (r *Recorder) TaskIDs() []int32 {
	ids := make([]int32, 0, len(r.names))
	for id := range r.names {
		ids = append(ids, int32(id))
	}
	return ids
}

// Cap returns the ring capacity in events.
func (r *Recorder) Cap() int { return len(r.buf) }

// Total returns the number of events ever emitted, including ones the
// ring has since overwritten.
func (r *Recorder) Total() uint64 { return r.n }

// Dropped returns how many events were overwritten by ring wrap-around.
func (r *Recorder) Dropped() uint64 {
	if r.n <= uint64(len(r.buf)) {
		return 0
	}
	return r.n - uint64(len(r.buf))
}

// Events returns the retained events, oldest first, as a fresh slice.
func (r *Recorder) Events() []Event {
	if r.n <= uint64(len(r.buf)) {
		out := make([]Event, r.n)
		copy(out, r.buf[:r.n])
		return out
	}
	out := make([]Event, len(r.buf))
	start := r.n & r.mask // oldest retained event
	k := copy(out, r.buf[start:])
	copy(out[k:], r.buf[:start])
	return out
}

// itoa is a tiny allocation-conscious int formatter for cold paths that
// must not import fmt (keeping obs usable from hotpath-adjacent code
// without dragging in boxing).
func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [21]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
