package obs

import (
	"strings"
	"testing"
)

func TestRecorderRoundsCapacity(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, DefaultRingCapacity},
		{-5, DefaultRingCapacity},
		{1, 1},
		{3, 4},
		{1024, 1024},
		{1025, 2048},
	} {
		if got := NewRecorder(tc.in).Cap(); got != tc.want {
			t.Errorf("NewRecorder(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestRecorderOrderAndWrap(t *testing.T) {
	r := NewRecorder(4)
	for i := int64(0); i < 3; i++ {
		r.Emit(Event{Slot: i, Kind: EvSchedule})
	}
	evs := r.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3", len(evs))
	}
	for i, e := range evs {
		if e.Slot != int64(i) {
			t.Errorf("event %d has slot %d", i, e.Slot)
		}
	}
	if r.Dropped() != 0 {
		t.Errorf("Dropped = %d before wrap", r.Dropped())
	}

	// Overflow: ring of 4 sees 10 events, keeps the last 4.
	for i := int64(3); i < 10; i++ {
		r.Emit(Event{Slot: i, Kind: EvSchedule})
	}
	evs = r.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events after wrap, want 4", len(evs))
	}
	for i, e := range evs {
		if want := int64(6 + i); e.Slot != want {
			t.Errorf("event %d has slot %d, want %d (oldest first)", i, e.Slot, want)
		}
	}
	if r.Total() != 10 {
		t.Errorf("Total = %d, want 10", r.Total())
	}
	if r.Dropped() != 6 {
		t.Errorf("Dropped = %d, want 6", r.Dropped())
	}
}

// TestEmitZeroAllocs pins the recorder's own hot-path contract: Emit
// must not allocate, even across ring wrap-around.
func TestEmitZeroAllocs(t *testing.T) {
	r := NewRecorder(1024)
	slot := int64(0)
	allocs := testing.AllocsPerRun(5000, func() {
		r.Emit(Event{Slot: slot, Kind: EvSchedule, Task: 1, Proc: 0, A: slot})
		slot++
	})
	if allocs != 0 {
		t.Fatalf("Emit allocates %v/op, want 0", allocs)
	}
}

func TestTaskNames(t *testing.T) {
	r := NewRecorder(8)
	r.RegisterTask(2, "video")
	r.RegisterTask(0, "audio")
	r.RegisterTask(-1, "ignored")
	if got := r.TaskName(2); got != "video" {
		t.Errorf("TaskName(2) = %q", got)
	}
	if got := r.TaskName(0); got != "audio" {
		t.Errorf("TaskName(0) = %q", got)
	}
	if got := r.TaskName(1); got != "task#1" {
		t.Errorf("TaskName(1) = %q, want placeholder", got)
	}
	if got := r.TaskName(-1); got != "" {
		t.Errorf("TaskName(-1) = %q, want empty", got)
	}
	ids := r.TaskIDs()
	if len(ids) != 3 || ids[0] != 0 || ids[2] != 2 {
		t.Errorf("TaskIDs = %v", ids)
	}
}

func TestEventKindStrings(t *testing.T) {
	for k := EventKind(0); k < numEventKinds; k++ {
		if s := k.String(); s == "" || s == "unknown" {
			t.Errorf("EventKind(%d) has no name", k)
		}
	}
	if EventKind(200).String() != "unknown" {
		t.Error("out-of-range kind should be unknown")
	}
}

func TestItoa(t *testing.T) {
	for _, tc := range []struct {
		v    int64
		want string
	}{{0, "0"}, {7, "7"}, {-3, "-3"}, {1234567, "1234567"}} {
		if got := itoa(tc.v); got != tc.want {
			t.Errorf("itoa(%d) = %q, want %q", tc.v, got, tc.want)
		}
	}
}

func TestTimeline(t *testing.T) {
	r := NewRecorder(64)
	r.RegisterTask(0, "A")
	r.RegisterTask(1, "B")
	r.Emit(Event{Slot: 0, Kind: EvJoin, Task: 0, Proc: -1, A: 2, B: 3})
	r.Emit(Event{Slot: 0, Kind: EvRelease, Task: 0, Proc: -1, A: 1})
	r.Emit(Event{Slot: 0, Kind: EvSchedule, Task: 0, Proc: 0, A: 1})
	r.Emit(Event{Slot: 1, Kind: EvMigrate, Task: 0, Proc: 1, A: 0, B: 2})
	r.Emit(Event{Slot: 1, Kind: EvMiss, Task: 1, Proc: -1, A: 3, B: 1})
	r.Emit(Event{Slot: 1, Kind: EvTieBreakB, Task: 0, Proc: -1, A: 1, B: 4})
	r.Emit(Event{Slot: 2, Kind: EvIdle, Task: -1, Proc: 1})
	r.Emit(Event{Slot: 2, Kind: EvLagExtremum, Task: 0, Proc: -1, A: 2, B: 3})
	r.Emit(Event{Slot: 3, Kind: EvLeave, Task: 1, Proc: -1, A: 9})
	r.Emit(Event{Slot: 3, Kind: EvPreempt, Task: 0, Proc: 0, A: 4})
	r.Emit(Event{Slot: 3, Kind: EvTieBreakGroup, Task: 1, Proc: -1, A: 0, B: 6})

	var b strings.Builder
	if err := WriteTimeline(&b, r); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"join       A (2/3)",
		"release    A#1",
		"schedule   A#1 → P0",
		"migration  A#2 P0 → P1",
		"miss       B#3 (deadline 1)",
		"tiebreak-b A over B (deadline 4)",
		"idle       P1",
		"lag-max    A |lag| = 2/3",
		"leave      B (allocated 9)",
		"preempt    A#4 (was on P0)",
		"tiebreak-g B over A (deadline 6)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
}

func TestTimelineReportsDrop(t *testing.T) {
	r := NewRecorder(2)
	for i := int64(0); i < 5; i++ {
		r.Emit(Event{Slot: i, Kind: EvIdle, Task: -1})
	}
	var b strings.Builder
	if err := WriteTimeline(&b, r); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "ring wrapped: 3 oldest events dropped") {
		t.Errorf("missing drop notice:\n%s", b.String())
	}
}
