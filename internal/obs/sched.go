package obs

// SchedulerMetrics bundles the fixed set of instruments the Pfair
// scheduler (internal/core) updates per slot, plus a growable table of
// per-task instruments indexed by the scheduler-assigned task id. All
// instruments live in one Registry so a single WritePrometheus or
// Snapshot call exports the whole scheduler.
//
// Handles are preallocated here (cold path); the scheduler's per-slot
// updates are bare integer operations on them.
type SchedulerMetrics struct {
	// Global counters, mirroring core.Stats plus the queue-level detail
	// Stats cannot see.
	Slots           *Counter
	Allocations     *Counter
	ContextSwitches *Counter
	Migrations      *Counter
	Preemptions     *Counter
	Misses          *Counter
	// HeapCmps counts priority-comparator invocations — the dominant
	// term of the per-slot cost Figure 2 measures (each binary-heap
	// operation performs O(log n) of them).
	HeapCmps *Counter
	// TieBreakB and TieBreakGroup count deadline ties decided by the
	// PD² b-bit and group-deadline rules — how often the tie-breaks
	// that separate PD² from EPDF actually fire.
	TieBreakB     *Counter
	TieBreakGroup *Counter

	// Joins, Leaves, and Reweights count transactions the admission
	// plane accepted (Plane.Commit), by operation — OpFinish folds into
	// Leaves; AdmissionRejects counts the refused ones (Plane.Reject).
	// All are cold-path: they move only when a dynamic operation is
	// submitted, never per slot.
	Joins            *Counter
	Leaves           *Counter
	Reweights        *Counter
	AdmissionRejects *Counter

	// ShardLocalHits, ShardSteals, and ShardUnderflows mirror the shard
	// tier's work-stealing counters (shard.Stats): picks served from the
	// destination CPU's own shard, picks stolen from another shard, and
	// steals whose richest victim was empty. All zero when sharding is
	// off.
	ShardLocalHits  *Counter
	ShardSteals     *Counter
	ShardUnderflows *Counter

	// ReadyLen and PendingLen are the queue lengths after the most
	// recent slot.
	ReadyLen   *Gauge
	PendingLen *Gauge

	// TraceTotal and TraceDropped mirror the attached trace recorder's
	// ring occupancy (events ever emitted / events lost to ring wrap),
	// copied in by ObserveRing at exposition time. A wrapped ring means
	// the exported trace is a suffix of the run, and these two series are
	// how a consumer tells.
	TraceTotal   *Gauge
	TraceDropped *Gauge

	// Occupancy distributes busy processors per slot; Tardiness
	// distributes slots-late per deadline miss.
	Occupancy *Histogram
	Tardiness *Histogram

	reg    *Registry
	tasks  []*TaskMetrics // indexed by scheduler task id
	shards []*Gauge       // per-shard occupancy gauges, indexed by shard
}

// TaskMetrics is the per-task instrument block.
type TaskMetrics struct {
	Allocations *Counter
	Migrations  *Counter
	Preemptions *Counter
	Misses      *Counter
	// MaxAbsLagNum is the numerator of the largest |lag| observed, over
	// the denominator LagDen (the task's period): lag after slot t is
	// (cost·(t+1−join) − allocated·period) / period. Kept as an exact
	// integer pair, per the repository's no-floats rule.
	MaxAbsLagNum *Gauge
	// LagDen is the fixed denominator of MaxAbsLagNum.
	LagDen int64
}

// occupancyBounds covers 1..16 processors exactly; larger machines fall
// into the overflow bucket.
var occupancyBounds = []int64{0, 1, 2, 4, 8, 16}

// tardinessBounds covers the small tardiness values the paper's
// tardiness experiments report.
var tardinessBounds = []int64{1, 2, 4, 8, 16, 32}

// NewSchedulerMetrics registers the scheduler's instrument set in reg
// and returns the handle block. Passing nil creates a private registry,
// retrievable via Registry().
func NewSchedulerMetrics(reg *Registry) *SchedulerMetrics {
	if reg == nil {
		reg = NewRegistry()
	}
	return &SchedulerMetrics{
		Slots:            reg.Counter("pfair_slots_total", "", "scheduler invocations (one per slot)"),
		Allocations:      reg.Counter("pfair_allocations_total", "", "quanta handed to tasks"),
		ContextSwitches:  reg.Counter("pfair_context_switches_total", "", "slot boundaries where a processor changed task"),
		Migrations:       reg.Counter("pfair_migrations_total", "", "allocations on a different processor than the task's previous one"),
		Preemptions:      reg.Counter("pfair_preemptions_total", "", "tasks descheduled mid-job at a slot boundary"),
		Misses:           reg.Counter("pfair_deadline_misses_total", "", "subtask deadline violations detected"),
		HeapCmps:         reg.Counter("pfair_heap_comparisons_total", "", "priority comparator invocations across the ready and release queues"),
		TieBreakB:        reg.Counter("pfair_tiebreak_bbit_total", "", "deadline ties decided by the b-bit rule"),
		TieBreakGroup:    reg.Counter("pfair_tiebreak_group_total", "", "deadline ties decided by the group-deadline rule"),
		Joins:            reg.Counter("pfair_admission_joins_total", "", "task joins accepted by the admission plane"),
		Leaves:           reg.Counter("pfair_admission_leaves_total", "", "task leaves (and finishes) accepted by the admission plane"),
		Reweights:        reg.Counter("pfair_admission_reweights_total", "", "task reweights accepted by the admission plane"),
		AdmissionRejects: reg.Counter("pfair_admission_rejects_total", "", "dynamic-task requests the admission plane refused"),
		ShardLocalHits:   reg.Counter("pfair_shard_local_hits_total", "", "ready-queue picks served from the destination CPU's own shard"),
		ShardSteals:      reg.Counter("pfair_shard_steals_total", "", "ready-queue picks stolen from another CPU's shard"),
		ShardUnderflows:  reg.Counter("pfair_shard_underflows_total", "", "steals whose richest victim shard was empty"),
		ReadyLen:         reg.Gauge("pfair_ready_queue_len", "", "ready-queue length after the last slot"),
		PendingLen:       reg.Gauge("pfair_release_queue_len", "", "release-queue length after the last slot"),
		TraceTotal:       reg.Gauge("pfair_trace_ring_total_events", "", "trace events ever emitted to the attached recorder"),
		TraceDropped:     reg.Gauge("pfair_trace_ring_dropped_events", "", "trace events lost to ring wrap-around (>0 means the trace is a suffix of the run)"),
		Occupancy:        reg.Histogram("pfair_slot_occupancy", "", "busy processors per slot", occupancyBounds),
		Tardiness:        reg.Histogram("pfair_tardiness_slots", "", "slots late per deadline miss", tardinessBounds),
		reg:              reg,
	}
}

// Registry returns the registry holding this block's instruments.
func (m *SchedulerMetrics) Registry() *Registry { return m.reg }

// EnsureTask registers the per-task instrument block for the given
// scheduler task id (idempotent, cold path). Ids must be small and
// dense — they index a slice.
func (m *SchedulerMetrics) EnsureTask(id int32, name string, period int64) {
	if id < 0 {
		return
	}
	for int(id) >= len(m.tasks) {
		m.tasks = append(m.tasks, nil)
	}
	if m.tasks[id] != nil {
		return
	}
	labels := `task="` + EscapeLabel(name) + `"`
	m.tasks[id] = &TaskMetrics{
		Allocations:  m.reg.Counter("pfair_task_allocations_total", labels, "quanta allocated, per task"),
		Migrations:   m.reg.Counter("pfair_task_migrations_total", labels, "migrations, per task"),
		Preemptions:  m.reg.Counter("pfair_task_preemptions_total", labels, "preemptions, per task"),
		Misses:       m.reg.Counter("pfair_task_deadline_misses_total", labels, "deadline misses, per task"),
		MaxAbsLagNum: m.reg.Gauge("pfair_task_max_abs_lag_num", labels, "numerator of max |lag| (denominator = the task's period)"),
		LagDen:       period,
	}
}

// Task returns the instrument block for id, or nil for ids never passed
// to EnsureTask. The nil return is part of the hot-path contract: the
// scheduler guards each use, so an unregistered id degrades to a missing
// series rather than a crash.
//
//pfair:hotpath
func (m *SchedulerMetrics) Task(id int32) *TaskMetrics {
	if id < 0 || int(id) >= len(m.tasks) {
		return nil
	}
	return m.tasks[id]
}

// EnsureShards registers per-shard occupancy gauges for shards [0, n)
// (idempotent, cold path). The scheduler calls it when sharding is on
// and a metrics block attaches.
func (m *SchedulerMetrics) EnsureShards(n int) {
	for i := len(m.shards); i < n; i++ {
		m.shards = append(m.shards,
			m.reg.Gauge("pfair_shard_occupancy", `shard="`+itoa(int64(i))+`"`, "queued subtasks per ready-queue shard after the last slot"))
	}
}

// Shard returns the occupancy gauge for shard i, or nil for shards never
// passed to EnsureShards — the same nil-guarded hot-path contract as
// Task.
//
//pfair:hotpath
func (m *SchedulerMetrics) Shard(i int) *Gauge {
	if i < 0 || i >= len(m.shards) {
		return nil
	}
	return m.shards[i]
}

// ObserveRing copies rec's ring occupancy (total emitted, dropped to
// wrap) into the TraceTotal/TraceDropped gauges. Cold path — call before
// exposition; a nil recorder is a no-op.
func (m *SchedulerMetrics) ObserveRing(rec *Recorder) {
	if rec == nil {
		return
	}
	m.TraceTotal.Set(int64(rec.Total()))
	m.TraceDropped.Set(int64(rec.Dropped()))
}
