package obs

import (
	"encoding/json"
	"io"
)

// This file exports a recorded schedule as Chrome trace-event JSON (the
// format Perfetto and chrome://tracing load): one lane per processor
// under the "processors" process, one lane per task under the "tasks"
// process, and a "scheduler" lane for decision events. Schedule events
// in consecutive slots on the same processor merge into one span, so a
// task running unpreempted for k slots renders as one k-slot block —
// migrations and preemptions are then visible as span boundaries.
//
// The exporter runs after the simulation (cold path); it allocates
// freely.

// Chrome trace-event constants. pid selects the top-level group
// ("process") a lane belongs to; tid the lane within it.
const (
	chromePidProcs = 0       // per-processor lanes
	chromePidTasks = 1       // per-task lanes
	schedulerTid   = 1 << 20 // decision lane inside the processor group
)

// ChromeTraceOptions tunes the export.
type ChromeTraceOptions struct {
	// SlotMicros is the rendered length of one slot in microseconds
	// (trace-event timestamps are in µs). 0 means 1000 (1 ms per slot).
	SlotMicros int64
	// Procs forces lanes for processors [0, Procs) even if some were
	// never scheduled on; 0 infers lanes from the events.
	Procs int
	// Extra is merged into the file's top-level otherData object — run
	// configuration (algorithm, processor count, shard stats) a consumer
	// like cmd/pfairtrace reads back. The exporter's reserved keys
	// (slotMicros, totalEvents, retainedEvents, droppedEvents) win over
	// Extra on collision.
	Extra map[string]any
}

// chromeEvent is one trace-event record. Fields follow the Trace Event
// Format; omitempty keeps metadata events minimal. Args is a map, which
// encoding/json marshals with sorted keys, so output is deterministic.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	Ts    int64          `json:"ts"`
	Dur   int64          `json:"dur,omitempty"`
	Pid   int64          `json:"pid"`
	Tid   int64          `json:"tid"`
	Cat   string         `json:"cat,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	// OtherData is the trace-event format's free-form metadata object.
	// The exporter records the slot scale and the ring accounting there —
	// droppedEvents > 0 is how a consumer distinguishes a silently
	// truncated (wrapped-ring) trace from a complete one.
	OtherData map[string]any `json:"otherData"`
}

// run is one maximal span of consecutive slots a task spent on one
// processor.
type run struct {
	task       int32
	proc       int32
	start, end int64 // slots, inclusive
	firstSub   int64
	lastSub    int64
}

// WriteChromeTrace writes the recorder's retained events as Chrome
// trace-event JSON. Load the output in https://ui.perfetto.dev or
// chrome://tracing.
func WriteChromeTrace(w io.Writer, rec *Recorder, opt ChromeTraceOptions) error {
	unit := opt.SlotMicros
	if unit <= 0 {
		unit = 1000
	}
	events := rec.Events()

	maxProc := int32(opt.Procs) - 1
	for _, e := range events {
		if e.Proc > maxProc {
			maxProc = e.Proc
		}
	}

	var out []chromeEvent
	meta := func(pid, tid int64, key, name string) {
		out = append(out, chromeEvent{
			Name: key, Phase: "M", Pid: pid, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}
	meta(chromePidProcs, 0, "process_name", "processors")
	meta(chromePidTasks, 0, "process_name", "tasks")
	for k := int32(0); k <= maxProc; k++ {
		meta(chromePidProcs, int64(k), "thread_name", "CPU "+itoa(int64(k)))
	}
	for _, id := range rec.TaskIDs() {
		meta(chromePidTasks, int64(id), "thread_name", rec.TaskName(id))
	}
	meta(chromePidProcs, schedulerTid, "thread_name", "scheduler decisions")

	// Merge consecutive EvSchedule events into runs; everything else
	// becomes an instant on the relevant lane(s).
	open := map[int32]*run{} // task id → current run
	flush := func(r *run) {
		dur := (r.end - r.start + 1) * unit
		args := map[string]any{
			"task":     rec.TaskName(r.task),
			"subtasks": itoa(r.firstSub) + "-" + itoa(r.lastSub),
		}
		out = append(out, chromeEvent{
			Name: rec.TaskName(r.task), Phase: "X", Cat: "schedule",
			Ts: r.start * unit, Dur: dur, Pid: chromePidProcs, Tid: int64(r.proc), Args: args,
		})
		out = append(out, chromeEvent{
			Name: "CPU " + itoa(int64(r.proc)), Phase: "X", Cat: "schedule",
			Ts: r.start * unit, Dur: dur, Pid: chromePidTasks, Tid: int64(r.task), Args: args,
		})
	}
	instant := func(e Event, name string, args map[string]any) {
		ev := chromeEvent{
			Name: name, Phase: "i", Scope: "t", Cat: "event",
			Ts: e.Slot * unit, Pid: chromePidTasks, Tid: int64(e.Task), Args: args,
		}
		if e.Task < 0 {
			ev.Pid, ev.Tid = chromePidProcs, int64(e.Proc)
		}
		out = append(out, ev)
	}

	for _, e := range events {
		switch e.Kind {
		case EvSchedule:
			if r := open[e.Task]; r != nil {
				if r.proc == e.Proc && e.Slot == r.end+1 {
					r.end = e.Slot
					r.lastSub = e.A
					continue
				}
				flush(r)
			}
			open[e.Task] = &run{task: e.Task, proc: e.Proc, start: e.Slot, end: e.Slot, firstSub: e.A, lastSub: e.A}
		case EvRelease:
			instant(e, "release", map[string]any{"subtask": e.A, "deadline": e.B})
		case EvMiss:
			instant(e, "deadline-miss", map[string]any{"subtask": e.A, "deadline": e.B})
		case EvMigrate:
			instant(e, "migration", map[string]any{"from": e.A, "to": e.Proc, "subtask": e.B})
		case EvPreempt:
			instant(e, "preemption", map[string]any{"subtask": e.A, "proc": e.Proc})
		case EvJoin:
			instant(e, "join", map[string]any{"cost": e.A, "period": e.B})
		case EvLeave:
			instant(e, "leave", map[string]any{"allocated": e.A})
		case EvLagExtremum:
			instant(e, "lag-extremum", map[string]any{"num": e.A, "den": e.B})
		case EvReweight:
			instant(e, "reweight", map[string]any{"cost": e.A, "period": e.B})
		case EvTieBreakB, EvTieBreakGroup:
			out = append(out, chromeEvent{
				Name: e.Kind.String(), Phase: "i", Scope: "t", Cat: "decision",
				Ts: e.Slot * unit, Pid: chromePidProcs, Tid: schedulerTid,
				Args: map[string]any{
					"winner": rec.TaskName(e.Task), "loser": rec.TaskName(int32(e.A)), "deadline": e.B,
				},
			})
		case EvIdle:
			// Idle renders as the absence of a span; no event needed.
		}
	}
	// Flush remaining runs in task-id order for deterministic output.
	for _, id := range rec.TaskIDs() {
		if r := open[id]; r != nil {
			flush(r)
		}
	}

	od := map[string]any{}
	for k, v := range opt.Extra { //pfair:orderinvariant keys are copied into a map encoding/json marshals with sorted keys
		od[k] = v
	}
	od["slotMicros"] = unit
	od["totalEvents"] = rec.Total()
	od["retainedEvents"] = len(events)
	od["droppedEvents"] = rec.Dropped()

	enc := json.NewEncoder(w)
	return enc.Encode(chromeFile{TraceEvents: out, DisplayTimeUnit: "ms", OtherData: od})
}
