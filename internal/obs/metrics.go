package obs

import (
	"expvar"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file implements the metrics registry: fixed-slot counters,
// gauges, and histograms preallocated at registration time so that
// updating one from a scheduler hot path is a bare integer operation.
// All values are int64 — the repository's exactness rule (see the
// ratfloat analyzer) extends to metrics: rates and ratios are computed
// by consumers at exposition time, never stored.

// MetricKind discriminates registry entries.
type MetricKind uint8

const (
	// KindCounter is a monotonically non-decreasing count.
	KindCounter MetricKind = iota
	// KindGauge is a point-in-time value (may move both ways).
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// Counter is a monotonically increasing int64. The zero value is usable
// but unregistered; obtain registered counters from Registry.Counter.
type Counter struct{ v int64 }

// Inc adds one.
//
//pfair:hotpath
func (c *Counter) Inc() { c.v++ }

// Add adds d (d must be ≥ 0 for the counter to stay monotone; this is
// not checked on the hot path).
//
//pfair:hotpath
func (c *Counter) Add(d int64) { c.v += d }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is a point-in-time int64 value.
type Gauge struct{ v int64 }

// Set stores v.
//
//pfair:hotpath
func (g *Gauge) Set(v int64) { g.v = v }

// SetMax stores v if it exceeds the current value.
//
//pfair:hotpath
func (g *Gauge) SetMax(v int64) {
	if v > g.v {
		g.v = v
	}
}

// Value returns the current value.
//
//pfair:hotpath
func (g *Gauge) Value() int64 { return g.v }

// Histogram counts observations into fixed buckets. Bucket i counts
// observations ≤ bounds[i]; one implicit overflow bucket counts the
// rest. Bounds are fixed at registration so Observe never allocates.
type Histogram struct {
	bounds []int64
	counts []int64 // len(bounds)+1, last = overflow (+Inf)
	sum    int64
	count  int64
}

// Observe records one value.
//
//pfair:hotpath
func (h *Histogram) Observe(v int64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() int64 { return h.sum }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Buckets returns (bounds, cumulative counts) in Prometheus convention:
// cumulative[i] counts observations ≤ bounds[i], with one final entry
// for +Inf. The slices are fresh copies.
func (h *Histogram) Buckets() ([]int64, []int64) {
	bounds := append([]int64(nil), h.bounds...)
	cum := make([]int64, len(h.counts))
	run := int64(0)
	for i, c := range h.counts {
		run += c
		cum[i] = run
	}
	return bounds, cum
}

// metricEntry is one registered series.
type metricEntry struct {
	family string // metric family name, e.g. pfair_migrations_total
	labels string // rendered label pairs without braces, e.g. task="A"
	help   string
	kind   MetricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

func (e *metricEntry) name() string {
	if e.labels == "" {
		return e.family
	}
	return e.family + "{" + e.labels + "}"
}

// Registry holds metric series in registration order. Registration (the
// only allocating operation) happens at setup time; the returned handles
// are updated lock-free by a single owner. Like the Recorder, a Registry
// is per-scheduler-instance, not global, so no synchronization is
// needed.
type Registry struct {
	entries []*metricEntry
	byName  map[string]*metricEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*metricEntry{}}
}

// Counter registers (or returns the existing) counter series
// family{labels}. labels is either empty or rendered Prometheus label
// pairs such as `task="A"`. Registering the same series twice returns
// the same handle, so instruments can be declared idempotently.
func (r *Registry) Counter(family, labels, help string) *Counter {
	e := r.lookup(family, labels, help, KindCounter)
	if e.counter == nil {
		e.counter = &Counter{}
	}
	return e.counter
}

// Gauge registers (or returns the existing) gauge series family{labels}.
func (r *Registry) Gauge(family, labels, help string) *Gauge {
	e := r.lookup(family, labels, help, KindGauge)
	if e.gauge == nil {
		e.gauge = &Gauge{}
	}
	return e.gauge
}

// Histogram registers (or returns the existing) histogram series with
// the given ascending bucket upper bounds. The bounds of an existing
// series are not changed.
func (r *Registry) Histogram(family, labels, help string, bounds []int64) *Histogram {
	e := r.lookup(family, labels, help, KindHistogram)
	if e.hist == nil {
		e.hist = &Histogram{
			bounds: append([]int64(nil), bounds...),
			counts: make([]int64, len(bounds)+1),
		}
	}
	return e.hist
}

// lookup finds or creates the entry for family{labels}. A kind clash on
// an existing name returns a fresh unregistered entry rather than
// corrupting the registered one (the registry's contract is "register,
// then update handles"; a clash is a programming error surfaced by the
// Snapshot tests, not worth a panic in a library package).
func (r *Registry) lookup(family, labels, help string, kind MetricKind) *metricEntry {
	key := family + "{" + labels + "}"
	if e, ok := r.byName[key]; ok {
		if e.kind == kind {
			return e
		}
		return &metricEntry{family: family, labels: labels, help: help, kind: kind}
	}
	e := &metricEntry{family: family, labels: labels, help: help, kind: kind}
	r.entries = append(r.entries, e)
	r.byName[key] = e
	return e
}

// EscapeLabel renders v safely for use inside a Prometheus label value:
// backslash, double quote, and newline are escaped.
func EscapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// Sample is one exported series value, the unit of Snapshot.
type Sample struct {
	Family string
	Labels string
	Kind   MetricKind
	// Value is the counter or gauge value; for histograms it is the
	// observation count (with Sum and Buckets carrying the rest).
	Value int64
	Sum   int64
	// BucketBounds and BucketCounts are Prometheus-style cumulative
	// buckets, nil for counters and gauges.
	BucketBounds []int64
	BucketCounts []int64
}

// Name returns the full series name family{labels}.
func (s Sample) Name() string {
	if s.Labels == "" {
		return s.Family
	}
	return s.Family + "{" + s.Labels + "}"
}

// Snapshot returns every registered series in registration order. The
// result is a deep copy: mutating it does not affect the registry.
func (r *Registry) Snapshot() []Sample {
	out := make([]Sample, 0, len(r.entries))
	for _, e := range r.entries {
		s := Sample{Family: e.family, Labels: e.labels, Kind: e.kind}
		switch e.kind {
		case KindCounter:
			s.Value = e.counter.Value()
		case KindGauge:
			s.Value = e.gauge.Value()
		case KindHistogram:
			s.Value = e.hist.Count()
			s.Sum = e.hist.Sum()
			s.BucketBounds, s.BucketCounts = e.hist.Buckets()
		}
		out = append(out, s)
	}
	return out
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format (version 0.0.4). Series appear in registration order; HELP and
// TYPE headers are emitted once per family, at its first series.
func (r *Registry) WritePrometheus(w io.Writer) error {
	seen := map[string]bool{}
	for _, e := range r.entries {
		if !seen[e.family] {
			seen[e.family] = true
			if e.help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", e.family, e.help); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", e.family, e.kind); err != nil {
				return err
			}
		}
		switch e.kind {
		case KindCounter:
			if _, err := fmt.Fprintf(w, "%s %d\n", e.name(), e.counter.Value()); err != nil {
				return err
			}
		case KindGauge:
			if _, err := fmt.Fprintf(w, "%s %d\n", e.name(), e.gauge.Value()); err != nil {
				return err
			}
		case KindHistogram:
			bounds, cum := e.hist.Buckets()
			for i, b := range bounds {
				if err := writeBucket(w, e, itoa(b), cum[i]); err != nil {
					return err
				}
			}
			if err := writeBucket(w, e, "+Inf", e.hist.Count()); err != nil {
				return err
			}
			suffix := e.labels
			if suffix != "" {
				suffix = "{" + suffix + "}"
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", e.family, suffix, e.hist.Sum()); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", e.family, suffix, e.hist.Count()); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeBucket(w io.Writer, e *metricEntry, le string, cum int64) error {
	labels := `le="` + le + `"`
	if e.labels != "" {
		labels = e.labels + "," + labels
	}
	_, err := fmt.Fprintf(w, "%s_bucket{%s} %d\n", e.family, labels, cum)
	return err
}

// ExpvarFunc returns an expvar.Func exposing the registry as a JSON
// object keyed by full series name. Publish it under a name of your
// choice: expvar.Publish("pfair", reg.ExpvarFunc()). (Publication is
// left to the caller because expvar.Publish panics on duplicate names —
// a process-global concern the registry cannot arbitrate.)
func (r *Registry) ExpvarFunc() expvar.Func {
	return func() any {
		snap := r.Snapshot()
		m := make(map[string]any, len(snap))
		for _, s := range snap {
			switch s.Kind {
			case KindHistogram:
				m[s.Name()] = map[string]any{
					"count":   s.Value,
					"sum":     s.Sum,
					"bounds":  s.BucketBounds,
					"buckets": s.BucketCounts,
				}
			default:
				m[s.Name()] = s.Value
			}
		}
		return m // encoding/json sorts map keys: deterministic output
	}
}

// WriteSummary writes a compact human-readable "name value" listing of
// every series, sorted by name — the per-figure summary format used by
// cmd/experiments.
func (r *Registry) WriteSummary(w io.Writer) error {
	snap := r.Snapshot()
	sort.Slice(snap, func(i, j int) bool { return snap[i].Name() < snap[j].Name() })
	for _, s := range snap {
		switch s.Kind {
		case KindHistogram:
			if _, err := fmt.Fprintf(w, "%s count=%d sum=%d\n", s.Name(), s.Value, s.Sum); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s %d\n", s.Name(), s.Value); err != nil {
				return err
			}
		}
	}
	return nil
}
