package admission

import (
	"fmt"

	"pfair/internal/rational"
	"pfair/internal/task"
)

// This file holds the exact-rational feasibility tests the admission
// plane applies before a join or an upward reweight commits. Each test
// answers one question — does the prospective set still satisfy the
// policy's schedulability condition? — with exact arithmetic, per the
// repository's no-floats rule:
//
//   - Utilization is Equation (2), Σ wt(T) ≤ M: necessary and
//     sufficient for Pfair/ERfair (the paper's core claim), necessary
//     and sufficient (with M = 1) for preemptive uniprocessor EDF, and
//     the capacity gate wrr enforces.
//   - Hyperbolic is the Bini–Buttazzo–Buttazzo bound Π(uᵢ+1) ≤ 2,
//     sufficient for uniprocessor RM — tighter than the Liu–Layland
//     n(2^{1/n}−1) bound the rm package also exposes.
//   - Tests that cannot live below the policies in the import graph —
//     partition's López bound, the exact global-EDF test of
//     Goossens–Meumeu Yomsi (PAPERS.md) — plug in as Test values built
//     by the policy and invoked by its Submit.
//
// The error a failed test returns is the admission error the caller
// surfaces; it names the violated bound with its exact operands.

// Test is a policy-supplied feasibility predicate over a request: nil
// error means the request's prospective state is schedulable. Policies
// whose bound lives higher in the import graph (partition, global EDF)
// wrap it as a Test and apply it inside Submit alongside the structural
// validation this package owns.
type Test func(req Request) error

// Utilization applies Equation (2) to a prospective change: with total
// the current exact utilization sum, add the weight joining and sub the
// weight departing (either may be zero), it reports whether
// total − sub + add ≤ capacity still holds. The inputs are not
// modified.
func Utilization(total *rational.Acc, add, sub rational.Rat, capacity int64) error {
	w := total.Clone().Sub(sub).Add(add)
	if w.CmpInt(capacity) > 0 {
		return fmt.Errorf("admission: utilization %v would exceed the capacity %d (Σwt ≤ %d)", w, capacity, capacity)
	}
	return nil
}

// Hyperbolic applies the hyperbolic RM bound to the prospective set:
// Π (uᵢ + 1) ≤ 2 over set plus (optionally) add, computed exactly. A
// nil add tests the set as-is. The critical-instant argument makes the
// bound valid for mid-run joins: a task admitted under it meets its
// deadlines from any release phasing, so joining at the current instant
// is no worse than the synchronous case the bound models.
func Hyperbolic(set task.Set, add *task.Task) error {
	prod := rational.NewAcc().SetInt(1)
	mul := func(t *task.Task) {
		prod.MulRat(t.Weight().Add(rational.One()))
	}
	for _, t := range set {
		mul(t)
	}
	if add != nil {
		mul(add)
	}
	if prod.CmpInt(2) > 0 {
		name := "the set"
		if add != nil {
			name = fmt.Sprintf("admitting %v", add)
		}
		return fmt.Errorf("admission: %s fails the hyperbolic RM bound: Π(uᵢ+1) = %v > 2", name, prod)
	}
	return nil
}

// globalEDF is the registered exact global-EDF schedulability test (the
// Goossens–Meumeu Yomsi test of PAPERS.md), nil until a higher layer
// provides one. The hook exists so a future exact test can gate
// admission for a global-EDF policy without this package importing it.
var globalEDF func(set task.Set, m int) bool

// RegisterGlobalEDFTest installs the exact global-EDF schedulability
// test the plane consults through GlobalEDFTest. Intended to be called
// once from an init function of the package implementing the test.
func RegisterGlobalEDFTest(fn func(set task.Set, m int) bool) { globalEDF = fn }

// GlobalEDFTest returns the registered exact global-EDF test, or ok =
// false when none is installed — callers fall back to the utilization
// bound in that case.
func GlobalEDFTest() (fn func(set task.Set, m int) bool, ok bool) {
	return globalEDF, globalEDF != nil
}
