// Package admission is the policy-agnostic admission plane for dynamic
// task operations: one Request/Decision model, exact-rational
// feasibility tests, and a transaction ledger with observability fanout,
// shared by every engine policy that accepts mid-run churn.
//
// Before this package existed, the paper's §5.2 join/leave rules and
// §5.3 reweighting lived only inside core.Scheduler, and each consumer
// (internal/faults, the fuzz churn scenarios, the examples) poked
// mutations through its own seam; the sibling policies (edf, rm, wrr,
// supertask) were statically admitted. The plane factors the shared
// protocol out once:
//
//	validate → feasibility-check → apply at a slot boundary →
//	emit recorder events + metrics → record the Decision
//
// A policy that accepts dynamic operations implements engine.Dynamic
// (Submit(Request) (Decision, error)) and is resolved at engine bind
// time like the other capability hooks. Each policy keeps its own
// apply-at-boundary mechanics — Pfair delays departures to the §5.2
// safe slot, the event-driven policies apply at the current instant,
// which is always a quantum boundary between engine steps — but the
// request model, the feasibility arithmetic, the event vocabulary
// (EvJoin/EvLeave/EvReweight), and the ledger are this package's.
//
// Import discipline: admission sits below the policies (engine imports
// it to declare Dynamic), so it may import only task, rational, and
// obs. The utilization and hyperbolic tests are implemented here with
// exact arithmetic; tests that live higher in the graph (the López
// partitioned bound, the exact global-EDF test of Goossens–Meumeu
// Yomsi) plug in as Test hooks.
package admission

import (
	"fmt"

	"pfair/internal/task"
)

// Op discriminates the dynamic-task operations of §5.2–§5.3.
type Op uint8

const (
	// OpJoin admits a new task (§5.2): allowed whenever the policy's
	// feasibility condition continues to hold with the task added.
	OpJoin Op = iota
	// OpLeave removes a task at the earliest safe slot (§5.2): the
	// current instant for a task that never ran or has non-negative lag,
	// later for a Pfair task that has borrowed from the future.
	OpLeave
	// OpReweight changes a task's rate (§5.3): modelled as a leave at
	// the safe slot plus an admission-checked rejoin with the new
	// parameters at that instant.
	OpReweight
	// OpFinish is a voluntary completion: the task declares it has no
	// more work and departs under the same safe-slot rules as OpLeave.
	// Policies treat it as OpLeave; the ledger keeps the two apart so a
	// forensic reader can tell shedding from completion.
	OpFinish

	numOps = iota
)

var opNames = [numOps]string{
	OpJoin:     "join",
	OpLeave:    "leave",
	OpReweight: "reweight",
	OpFinish:   "finish",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "unknown"
}

// Request is one dynamic-task transaction, submitted to a policy's
// engine.Dynamic implementation. Exactly the fields the Op needs are
// set; Validate enforces the shape before any policy state is touched.
type Request struct {
	Op Op
	// Task is the task to admit (OpJoin only).
	Task *task.Task
	// Name names the target task (OpLeave/OpReweight/OpFinish).
	Name string
	// NewCost and NewPeriod are the replacement parameters (OpReweight
	// only).
	NewCost, NewPeriod int64
	// Model optionally carries a policy-specific release model for
	// OpJoin (core accepts a core.ReleaseModel); policies that do not
	// understand the concrete type reject the request.
	Model any
}

// Join returns an OpJoin request for t.
func Join(t *task.Task) Request { return Request{Op: OpJoin, Task: t} }

// JoinModel returns an OpJoin request for t with a policy-specific
// release model.
func JoinModel(t *task.Task, model any) Request {
	return Request{Op: OpJoin, Task: t, Model: model}
}

// Leave returns an OpLeave request for the named task.
func Leave(name string) Request { return Request{Op: OpLeave, Name: name} }

// Reweight returns an OpReweight request changing the named task's
// parameters to newCost/newPeriod.
func Reweight(name string, newCost, newPeriod int64) Request {
	return Request{Op: OpReweight, Name: name, NewCost: newCost, NewPeriod: newPeriod}
}

// Finish returns an OpFinish request for the named task.
func Finish(name string) Request { return Request{Op: OpFinish, Name: name} }

// TaskName returns the name the request targets: Task.Name for OpJoin,
// Name otherwise.
func (r Request) TaskName() string {
	if r.Op == OpJoin && r.Task != nil {
		return r.Task.Name
	}
	return r.Name
}

// Validate checks the request's structural shape — the right fields for
// the Op, a valid task or parameters — without consulting any policy
// state. Policies call it first in Submit so every implementation
// rejects malformed requests identically.
func (r Request) Validate() error {
	switch r.Op {
	case OpJoin:
		if r.Task == nil {
			return fmt.Errorf("admission: join request carries no task")
		}
		return r.Task.Validate()
	case OpLeave, OpFinish:
		if r.Name == "" {
			return fmt.Errorf("admission: %s request names no task", r.Op)
		}
		if r.Task != nil || r.Model != nil {
			return fmt.Errorf("admission: %s request must not carry a task or model", r.Op)
		}
	case OpReweight:
		if r.Name == "" {
			return fmt.Errorf("admission: reweight request names no task")
		}
		if r.NewCost < 1 || r.NewPeriod < 1 || r.NewCost > r.NewPeriod {
			return fmt.Errorf("admission: reweight of %q to %d/%d: want 1 ≤ cost ≤ period", r.Name, r.NewCost, r.NewPeriod)
		}
	default:
		return fmt.Errorf("admission: unknown op %d", r.Op)
	}
	return nil
}

// Decision records one accepted transaction: what was done to whom, and
// the slot at which it takes (or took) effect — the current instant for
// immediate applications, the §5.2 safe departure slot for Pfair leaves
// and reweights, whose apply happens at that later boundary.
type Decision struct {
	Op   Op
	Name string
	// EffectiveAt is the engine instant the transaction's effect lands.
	EffectiveAt int64
}

func (d Decision) String() string {
	return fmt.Sprintf("%s %s @%d", d.Op, d.Name, d.EffectiveAt)
}
