package admission

import (
	"pfair/internal/obs"
)

// Plane is one policy's admission ledger plus its observability fanout:
// every accepted transaction is Committed here, every refused one
// Rejected, and the apply-at-boundary code emits the EvJoin / EvLeave /
// EvReweight trace events through the nil-guarded emission helpers so
// all policies narrate churn with one vocabulary.
//
// A Plane is owned by exactly one policy instance (one scheduler = one
// plane, mirroring the one-engine-one-arena rule) and is not safe for
// concurrent use. The recorder/metrics attachment mirrors the engine's:
// concrete pointers, nil when unobserved, swapped by Observe when the
// policy's own Observe runs.
type Plane struct {
	rec *obs.Recorder
	met *obs.SchedulerMetrics

	log     []Decision
	rejects int64
}

// NewPlane returns an empty, unobserved plane.
func NewPlane() *Plane { return &Plane{} }

// Observe attaches (or, with nils, detaches) the observability sinks
// the emission helpers and Commit fan out to. Cold path.
func (p *Plane) Observe(rec *obs.Recorder, met *obs.SchedulerMetrics) {
	p.rec, p.met = rec, met
}

// Commit records an accepted transaction in the ledger and bumps the
// per-op admission counter. Policies call it exactly once per accepted
// Submit, after validation and feasibility but before returning the
// Decision — the ledger orders transactions by acceptance, not by the
// (possibly later) boundary their effect lands on.
func (p *Plane) Commit(d Decision) {
	p.log = append(p.log, d)
	if met := p.met; met != nil {
		switch d.Op {
		case OpJoin:
			met.Joins.Inc()
		case OpLeave, OpFinish:
			met.Leaves.Inc()
		case OpReweight:
			met.Reweights.Inc()
		}
	}
}

// Reject counts a refused transaction and returns err unchanged, so a
// policy's Submit can gate-and-return in one expression. The error
// itself is the policy's (or the feasibility test's); the plane only
// keeps the tally observable.
func (p *Plane) Reject(op Op, err error) error {
	p.rejects++
	if met := p.met; met != nil {
		met.AdmissionRejects.Inc()
	}
	return err
}

// Log returns a copy of the accepted-transaction ledger in acceptance
// order.
func (p *Plane) Log() []Decision {
	return append([]Decision(nil), p.log...)
}

// Rejects returns the number of refused transactions.
func (p *Plane) Rejects() int64 { return p.rejects }

// EmitJoin narrates a task admission: A = cost, B = period. Callers
// pass the slot the admission lands on and the policy's dense
// observability id for the task. Nil-guarded; cold path (admission).
func (p *Plane) EmitJoin(slot int64, id int32, cost, period int64) {
	if rec := p.rec; rec != nil {
		rec.Emit(obs.Event{Slot: slot, Kind: obs.EvJoin, Task: id, Proc: -1, A: cost, B: period})
	}
}

// EmitLeave narrates a task departure: A = total quanta the task was
// allocated. Nil-guarded; cold path (departure boundaries).
func (p *Plane) EmitLeave(slot int64, id int32, allocated int64) {
	if rec := p.rec; rec != nil {
		rec.Emit(obs.Event{Slot: slot, Kind: obs.EvLeave, Task: id, Proc: -1, A: allocated})
	}
}

// EmitReweight narrates a weight change taking effect: A = the new
// cost, B = the new period. For policies that model reweighting as
// leave-and-join under a fresh id (core), the event carries the new
// incarnation's id and follows its EvJoin at the same slot.
// Nil-guarded; cold path (reweight boundaries).
func (p *Plane) EmitReweight(slot int64, id int32, newCost, newPeriod int64) {
	if rec := p.rec; rec != nil {
		rec.Emit(obs.Event{Slot: slot, Kind: obs.EvReweight, Task: id, Proc: -1, A: newCost, B: newPeriod})
	}
}
