// Package qlock models the synchronization techniques that Pfair's tight
// synchrony enables (Section 5.1).
//
// Under Pfair scheduling each subtask executes non-preemptively within its
// slot, so lock-holder preemption — the root of priority inversion and of
// unbounded remote blocking — can be avoided entirely by ensuring no lock
// is held across a quantum boundary: a critical section that is not
// guaranteed to complete before the boundary is simply deferred to the
// start of the task's next quantum [17]. When critical sections are short
// relative to the quantum (the paper cites tens of microseconds against a
// 1 ms quantum), the deferral cost is negligible.
//
// The same synchrony yields tight retry bounds for lock-free objects [18]:
// an operation's retry loop can only be interfered with by operations on
// the other m−1 processors, so within any window in which each processor
// completes at most k operations, an operation succeeds after at most
// (m−1)·k + 1 attempts.
//
// The package provides the admission rule, the analytic bounds, and a
// discrete simulator that verifies both against brute-force interleaving.
package qlock

import "fmt"

// FitsInQuantum reports whether a critical section of the given length,
// started at the given offset inside a quantum of size q, completes at or
// before the boundary.
func FitsInQuantum(offset, length, q int64) bool {
	return offset >= 0 && length > 0 && offset+length <= q
}

// Deferral returns how long a request issued at the given offset must wait
// before entering a critical section of the given length: zero if it fits
// in the current quantum, otherwise the time to the boundary (the section
// starts at offset 0 of the task's next quantum). It panics if the section
// can never fit (length > q).
func Deferral(offset, length, q int64) int64 {
	if length > q {
		//pfair:allowpanic analysis precondition, per the doc comment: such a section deadlocks by definition
		panic(fmt.Sprintf("qlock: section of length %d can never fit in quantum %d", length, q))
	}
	if FitsInQuantum(offset, length, q) {
		return 0
	}
	return q - offset
}

// MaxDeferral returns the worst-case deferral for sections up to csMax
// long: csMax − 1 (a request issued one tick too late waits that long).
func MaxDeferral(csMax, q int64) int64 {
	if csMax > q {
		//pfair:allowpanic analysis precondition: sections longer than the quantum can never fit
		panic("qlock: csMax exceeds the quantum")
	}
	if csMax <= 0 {
		return 0
	}
	return csMax - 1
}

// MaxBlocking bounds the time a granted-or-deferred request can wait for
// the lock itself on an m-processor system where every section is at most
// csMax long: each of the other m−1 processors can be inside or ahead in
// the queue with one section.
func MaxBlocking(m int, csMax int64) int64 {
	if m < 1 {
		//pfair:allowpanic analysis precondition: processor counts are static configuration values
		panic("qlock: need at least one processor")
	}
	return int64(m-1) * csMax
}

// RetryBound returns the lock-free retry bound: if each other processor
// completes at most opsPerWindow interfering operations during the
// operation's window, the operation succeeds within (m−1)·opsPerWindow + 1
// attempts.
func RetryBound(m int, opsPerWindow int64) int64 {
	if m < 1 || opsPerWindow < 0 {
		//pfair:allowpanic analysis precondition: parameters are static configuration values
		panic("qlock: invalid retry-bound parameters")
	}
	return int64(m-1)*opsPerWindow + 1
}

// SimulateLockFree models the retry behaviour of a lock-free object under
// Pfair's synchrony: m processors each attempt to commit one operation per
// quantum window against a shared versioned object. Every attempt reads
// the version, computes, and tries to commit; commits serialize (one per
// tick), so an attempt fails exactly when another processor committed
// in between. It returns the number of attempts each processor needed;
// the maximum is RetryBound(m, 1) = m, achieved by the last processor.
func SimulateLockFree(m int) []int64 {
	attempts := make([]int64, m)
	done := make([]bool, m)
	remaining := m
	for remaining > 0 {
		// All unfinished processors attempt concurrently this tick; the
		// lowest-indexed one wins the commit, invalidating the rest.
		winner := -1
		for p := 0; p < m; p++ {
			if done[p] {
				continue
			}
			attempts[p]++
			if winner < 0 {
				winner = p
			}
		}
		done[winner] = true
		remaining--
	}
	return attempts
}

// Request is one critical-section request in the simulator: issued at a
// tick offset within the quantum, holding the named lock for Length ticks.
type Request struct {
	Offset int64
	Lock   string
	Length int64
}

// ProcResult reports per-processor simulation outcomes.
type ProcResult struct {
	// Completed counts sections finished within the quantum.
	Completed int
	// Deferred counts sections pushed to the processor's next quantum.
	Deferred int
	// MaxWait is the longest lock-acquisition wait observed (ticks spent
	// queued behind holders on other processors).
	MaxWait int64
}

// SimulateQuantum runs one quantum of q ticks on m processors, each with
// its own request script (sorted by offset, non-overlapping per
// processor). Locks are granted FIFO, by processor index on ties. It
// returns the per-processor results and panics if the no-lock-across-
// boundary invariant would be violated — the admission rule makes that
// impossible, so a panic indicates a protocol bug.
//
// The simulator is deliberately conservative: a request that cannot
// complete by the boundary even if granted immediately is deferred at
// issue time, exactly as the Section 5.1 rule prescribes ("delaying the
// start of critical sections that are not guaranteed to complete by the
// quantum boundary"). A request that fits but gets queued behind other
// holders re-checks the rule when it reaches the head of the queue.
func SimulateQuantum(scripts [][]Request, q int64) []ProcResult {
	m := len(scripts)
	results := make([]ProcResult, m)
	// held[lock] = tick at which the lock frees.
	held := map[string]int64{}
	// next pending request index per processor and the tick each
	// processor becomes free to issue.
	idx := make([]int, m)
	free := make([]int64, m)

	for tick := int64(0); tick < q; tick++ {
		// Processors issue in index order at each tick (deterministic).
		for p := 0; p < m; p++ {
			if idx[p] >= len(scripts[p]) {
				continue
			}
			r := scripts[p][idx[p]]
			if r.Offset > tick || free[p] > tick {
				continue
			}
			// The request is at the head; find when the lock frees.
			start := tick
			if until, busy := held[r.Lock]; busy && until > start {
				start = until
			}
			wait := start - tick
			if wait > results[p].MaxWait {
				results[p].MaxWait = wait
			}
			if !FitsInQuantum(start, r.Length, q) {
				// Defer to the next quantum: the processor issues
				// nothing more this quantum for this request.
				results[p].Deferred++
				idx[p]++
				free[p] = q
				continue
			}
			end := start + r.Length
			if end > q {
				//pfair:allowpanic invariant: Deferral already pushed the section into a fresh quantum
				panic("qlock: invariant violated — lock held across the boundary")
			}
			held[r.Lock] = end
			free[p] = end
			results[p].Completed++
			idx[p]++
		}
	}
	return results
}
