package qlock

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestFitsInQuantum(t *testing.T) {
	cases := []struct {
		offset, length, q int64
		want              bool
	}{
		{0, 10, 10, true},
		{0, 11, 10, false},
		{5, 5, 10, true},
		{5, 6, 10, false},
		{9, 1, 10, true},
		{-1, 1, 10, false},
		{0, 0, 10, false},
	}
	for _, c := range cases {
		if got := FitsInQuantum(c.offset, c.length, c.q); got != c.want {
			t.Errorf("FitsInQuantum(%d,%d,%d) = %v, want %v", c.offset, c.length, c.q, got, c.want)
		}
	}
}

func TestDeferral(t *testing.T) {
	if got := Deferral(3, 4, 10); got != 0 {
		t.Errorf("fitting request deferred by %d", got)
	}
	// Issued at 8 with length 4 in q=10: waits 2 ticks to the boundary.
	if got := Deferral(8, 4, 10); got != 2 {
		t.Errorf("Deferral = %d, want 2", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("oversized section did not panic")
		}
	}()
	Deferral(0, 11, 10)
}

func TestBounds(t *testing.T) {
	if got := MaxDeferral(50, 1000); got != 49 {
		t.Errorf("MaxDeferral = %d, want 49", got)
	}
	if got := MaxDeferral(0, 1000); got != 0 {
		t.Errorf("MaxDeferral(0) = %d", got)
	}
	if got := MaxBlocking(4, 50); got != 150 {
		t.Errorf("MaxBlocking = %d, want 150", got)
	}
	if got := RetryBound(4, 1); got != 4 {
		t.Errorf("RetryBound = %d, want 4", got)
	}
	if got := RetryBound(1, 100); got != 1 {
		t.Errorf("uniprocessor RetryBound = %d, want 1", got)
	}
}

// TestQuickDeferralProperties: a deferred request's wait never reaches the
// quantum size, and fitting requests never wait.
func TestQuickDeferralProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := int64(10 + r.Intn(1000))
		length := int64(1 + r.Intn(int(q)))
		offset := int64(r.Intn(int(q)))
		d := Deferral(offset, length, q)
		if FitsInQuantum(offset, length, q) {
			return d == 0
		}
		return d > 0 && d < q && d <= MaxDeferral(length, q)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSimulateQuantumBasic(t *testing.T) {
	const q = 100
	scripts := [][]Request{
		{{Offset: 0, Lock: "L", Length: 10}},
		{{Offset: 0, Lock: "L", Length: 10}},
		{{Offset: 5, Lock: "M", Length: 3}},
	}
	res := SimulateQuantum(scripts, q)
	if res[0].Completed != 1 || res[0].MaxWait != 0 {
		t.Errorf("proc 0: %+v", res[0])
	}
	// Proc 1 queues behind proc 0 for 10 ticks.
	if res[1].Completed != 1 || res[1].MaxWait != 10 {
		t.Errorf("proc 1: %+v", res[1])
	}
	if res[2].Completed != 1 || res[2].MaxWait != 0 {
		t.Errorf("proc 2: %+v", res[2])
	}
}

func TestSimulateQuantumDefersLateSections(t *testing.T) {
	const q = 20
	scripts := [][]Request{
		{{Offset: 15, Lock: "L", Length: 10}}, // cannot finish by 20
	}
	res := SimulateQuantum(scripts, q)
	if res[0].Deferred != 1 || res[0].Completed != 0 {
		t.Errorf("late section not deferred: %+v", res[0])
	}
}

func TestSimulateQuantumDefersWhenQueuePushesPastBoundary(t *testing.T) {
	const q = 20
	scripts := [][]Request{
		{{Offset: 10, Lock: "L", Length: 9}}, // runs 10..19
		{{Offset: 11, Lock: "L", Length: 5}}, // head at 19, 19+5 > 20 → defer
	}
	res := SimulateQuantum(scripts, q)
	if res[0].Completed != 1 {
		t.Errorf("proc 0: %+v", res[0])
	}
	if res[1].Deferred != 1 || res[1].Completed != 0 {
		t.Errorf("proc 1 should defer at the head of the queue: %+v", res[1])
	}
}

// TestQuickNoLockAcrossBoundary: random scripts never trip the invariant
// panic, and observed waits respect the analytic blocking bound.
func TestQuickNoLockAcrossBoundary(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const q = 200
		m := 1 + r.Intn(5)
		csMax := int64(1 + r.Intn(40))
		locks := []string{"A", "B", "C"}[:1+r.Intn(3)]
		scripts := make([][]Request, m)
		for p := 0; p < m; p++ {
			n := r.Intn(4)
			offs := make([]int64, n)
			for i := range offs {
				offs[i] = int64(r.Intn(q))
			}
			sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
			for _, off := range offs {
				scripts[p] = append(scripts[p], Request{
					Offset: off,
					Lock:   locks[r.Intn(len(locks))],
					Length: 1 + r.Int63n(csMax),
				})
			}
		}
		res := SimulateQuantum(scripts, q) // panics on invariant violation
		bound := MaxBlocking(m, csMax)
		for _, pr := range res {
			if pr.MaxWait > bound {
				t.Logf("wait %d exceeded blocking bound %d", pr.MaxWait, bound)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSimulateLockFree(t *testing.T) {
	for _, m := range []int{1, 2, 4, 8} {
		attempts := SimulateLockFree(m)
		if len(attempts) != m {
			t.Fatalf("m=%d: %d results", m, len(attempts))
		}
		bound := RetryBound(m, 1)
		worst := int64(0)
		for _, a := range attempts {
			if a > bound {
				t.Errorf("m=%d: %d attempts exceed the retry bound %d", m, a, bound)
			}
			if a > worst {
				worst = a
			}
		}
		// The bound is tight: the last processor needs exactly m attempts.
		if worst != bound {
			t.Errorf("m=%d: worst attempts %d, bound %d should be achieved", m, worst, bound)
		}
	}
}
