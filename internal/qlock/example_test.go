package qlock_test

import (
	"fmt"

	"pfair/internal/qlock"
)

// ExampleDeferral shows the Section 5.1 rule: a critical section that
// cannot complete before the quantum boundary is deferred to the task's
// next quantum.
func ExampleDeferral() {
	const quantum = 1000 // µs
	// 40 µs section requested 30 µs into the quantum: fits, no delay.
	fmt.Println(qlock.Deferral(30, 40, quantum))
	// Same section requested 980 µs in: cannot finish by the boundary,
	// so it waits the remaining 20 µs and runs at the next quantum start.
	fmt.Println(qlock.Deferral(980, 40, quantum))
	// Output:
	// 0
	// 20
}

// ExampleRetryBound gives the lock-free retry bound on a four-processor
// system where each processor commits at most one interfering operation
// per window.
func ExampleRetryBound() {
	fmt.Println(qlock.RetryBound(4, 1))
	// Output:
	// 4
}
