// Package pfair is a from-scratch Go implementation of proportionate-fair
// (Pfair) multiprocessor real-time scheduling, reproducing Srinivasan,
// Holman, Anderson, and Baruah, "The Case for Fair Multiprocessor
// Scheduling" (IPDPS 2003).
//
// It provides the PD², PD, and PF optimal Pfair schedulers (plus the naive
// EPDF baseline), the work-conserving ERfair variant, the intra-sporadic
// task model, dynamic task joins/leaves/reweighting, supertasking, and the
// partitioned-scheduling machinery the paper compares against (uniprocessor
// EDF and RM, bin-packing heuristics, and the Equation (3) overhead
// accounting).
//
// This package is a thin facade over the implementation packages under
// internal/; it re-exports the types needed for the common "schedule a
// task set and inspect the result" workflow:
//
//	s := pfair.NewScheduler(2, pfair.PD2, pfair.Options{})
//	s.Join(pfair.MustNewTask("A", 2, 3)) // cost 2, period 3 → weight 2/3
//	s.Join(pfair.MustNewTask("B", 2, 3))
//	s.Join(pfair.MustNewTask("C", 2, 3)) // Σwt = 2: infeasible for ANY partitioning
//	s.RunUntil(3000)
//	fmt.Println(len(s.Stats().Misses)) // 0 — PD² is optimal
//
// The examples/ directory contains runnable programs for the paper's
// motivating scenarios, and cmd/experiments regenerates every figure of
// its evaluation section.
package pfair

import (
	"pfair/internal/admission"
	"pfair/internal/core"
	"pfair/internal/rational"
	"pfair/internal/task"
)

// Task is a recurrent real-time task with integer cost and period.
type Task = task.Task

// Set is an ordered collection of tasks.
type Set = task.Set

// NewTask returns a periodic task with the given name, cost, and period,
// or an error unless 0 < cost ≤ period.
func NewTask(name string, cost, period int64) (*Task, error) { return task.New(name, cost, period) }

// MustNewTask is NewTask for statically known parameters (examples,
// tables); it panics on invalid ones.
func MustNewTask(name string, cost, period int64) *Task { return task.MustNew(name, cost, period) }

// Weight is an exact rational number (task weights, lags).
type Weight = rational.Rat

// Algorithm selects the Pfair priority rule.
type Algorithm = core.Algorithm

// The Pfair scheduling algorithms. PD2 is the paper's subject and the most
// efficient optimal algorithm; PD and PF are the earlier optimal
// algorithms; EPDF (earliest-pseudo-deadline-first with no tie-breaks) is
// not optimal for more than two processors.
const (
	PD2  = core.PD2
	PD   = core.PD
	PF   = core.PF
	EPDF = core.EPDF
)

// Options configures a Scheduler (ERfair eligibility, affinity).
type Options = core.Options

// Scheduler is a global Pfair/ERfair multiprocessor scheduler.
type Scheduler = core.Scheduler

// NewScheduler returns a scheduler for m processors under the given
// algorithm.
func NewScheduler(m int, alg Algorithm, opts Options) *Scheduler {
	return core.NewScheduler(m, alg, opts)
}

// Assignment records one processor allocation in one slot.
type Assignment = core.Assignment

// Miss records a subtask scheduled (or abandoned) after its window closed.
type Miss = core.Miss

// Stats aggregates scheduling counters over a run.
type Stats = core.Stats

// ReleaseModel customizes subtask arrivals (the intra-sporadic model).
type ReleaseModel = core.ReleaseModel

// Pattern exposes the Pfair subtask algebra of a cost/period pair:
// windows, b-bits, group deadlines, and lags.
type Pattern = core.Pattern

// NewPattern returns the window pattern for a task with the given cost and
// period.
func NewPattern(cost, period int64) *Pattern { return core.NewPattern(cost, period) }

// Request describes one dynamic-task operation — a join, leave, or
// reweight — for the unified admission plane. Build one with Join,
// Leave, or Reweight and pass it to Scheduler.Submit; the same Request
// values drive the EDF, RM, WRR, and supertask simulators' Submit
// methods, so churn scripts are portable across policies.
type Request = admission.Request

// Decision records the admission plane's verdict on a Request: the slot
// the transaction took effect (joins are immediate, leaves and upward
// reweights wait for the Section 2 safe slot) and the resulting system
// weight.
type Decision = admission.Decision

// Join builds a Request admitting t at the current slot, subject to the
// policy's feasibility test (Equation (2) for the Pfair core).
func Join(t *Task) Request { return admission.Join(t) }

// Leave builds a Request removing the named task at its next safe slot.
func Leave(name string) Request { return admission.Leave(name) }

// Reweight builds a Request changing the named task's weight to
// newCost/newPeriod — leave-and-rejoin under the hood, with capacity
// reserved across the transition for upward reweights (Section 5.3).
func Reweight(name string, newCost, newPeriod int64) Request {
	return admission.Reweight(name, newCost, newPeriod)
}
