module pfair

go 1.22
