#!/bin/sh
# bench_guard.sh — CI regression gate for the scheduler hot path: rerun
# the BENCH_core.json benchmark set with a fixed iteration count and fail
# if any benchmark's ns/op regressed more than the threshold (default
# 30%) against the checked-in baseline, or if its allocs/op grew at all
# (the 0-alloc invariant is exact, not statistical).
#
# Fixed -benchtime=100000x iterations — rather than a wall-clock budget —
# keep the measured work identical run to run; -count=3 with the minimum
# taken per benchmark discards scheduler and cache warmup outliers. What
# variance remains is machine noise, which the generous threshold
# absorbs. The baseline is a committed artifact: regenerate it with
# scripts/bench.sh (clean tree) whenever a PR intentionally changes
# performance.
#
# The scale baseline is guarded the same way with a smaller fixed count
# (its per-op work is a full slot over a million tasks) and fewer
# repeats, matching how scripts/bench.sh generated it:
#
#	scripts/bench_guard.sh BENCH_scale.json 'BenchmarkScale' 500x 2
#
# Usage: scripts/bench_guard.sh [baseline.json] [bench-regex] [benchtime] [count]
#   BENCH_GUARD_THRESHOLD  percent regression tolerated (default 30)
set -eu

cd "$(dirname "$0")/.."
base="${1:-BENCH_core.json}"
pattern="${2:-BenchmarkFig2aPD2|BenchmarkFig2bPD2|BenchmarkFig1Windows}"
benchtime="${3:-100000x}"
count="${4:-3}"
thresh="${BENCH_GUARD_THRESHOLD:-30}"

if [ ! -f "$base" ]; then
	echo "bench_guard.sh: baseline $base not found" >&2
	exit 1
fi

raw="$(mktemp -p . bench_guard.XXXXXX.txt)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" \
	-benchmem -benchtime="$benchtime" -count="$count" . | tee "$raw"

awk -v thresh="$thresh" '
# Pass 1: the baseline JSON, one benchmark per line.
FNR == NR {
	if (match($0, /"name": "[^"]+"/)) {
		name = substr($0, RSTART + 9, RLENGTH - 10)
		ns = ""; al = ""
		if (match($0, /"ns_per_op": [0-9.eE+-]+/))    ns = substr($0, RSTART + 13, RLENGTH - 13)
		if (match($0, /"allocs_per_op": [0-9.eE+-]+/)) al = substr($0, RSTART + 17, RLENGTH - 17)
		if (ns != "") { base_ns[name] = ns + 0; base_al[name] = al + 0 }
	}
	next
}
# Pass 2: the fresh run; keep the best (minimum) of the -count repeats
# per benchmark, and the worst allocs/op (that invariant is exact).
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
	ns = ""; al = ""
	for (i = 2; i <= NF; i++) {
		if ($(i) == "ns/op")     ns = $(i - 1)
		if ($(i) == "allocs/op") al = $(i - 1)
	}
	if (ns == "" || !(name in base_ns)) next
	if (!(name in run_ns) || ns + 0 < run_ns[name]) run_ns[name] = ns + 0
	if (al != "" && (!(name in run_al) || al + 0 > run_al[name])) run_al[name] = al + 0
	if (!(name in seen)) { order[++nnames] = name; seen[name] = 1 }
}
END {
	for (k = 1; k <= nnames; k++) {
		name = order[k]
		checked++
		limit = base_ns[name] * (1 + thresh / 100)
		if (run_ns[name] > limit) {
			printf "REGRESSION %s: %.4g ns/op vs baseline %.4g (> +%s%%)\n", name, run_ns[name], base_ns[name], thresh
			bad++
		} else {
			printf "ok %s: %.4g ns/op vs baseline %.4g\n", name, run_ns[name], base_ns[name]
		}
		if ((name in run_al) && run_al[name] > base_al[name]) {
			printf "REGRESSION %s: %d allocs/op vs baseline %d\n", name, run_al[name], base_al[name]
			bad++
		}
	}
	if (checked == 0) { print "bench_guard: no benchmarks matched the baseline"; exit 1 }
	printf "bench_guard: %d benchmarks checked, %d regressions (threshold +%s%% ns/op)\n", checked, bad + 0, thresh
	if (bad > 0) exit 1
}
' "$base" "$raw"
