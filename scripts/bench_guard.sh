#!/bin/sh
# bench_guard.sh — CI regression gate for the scheduler hot path: rerun
# the BENCH_core.json benchmark set with a fixed iteration count and fail
# if any benchmark's ns/op regressed more than the threshold (default
# 30%) against the checked-in baseline, or if its allocs/op grew at all
# (the 0-alloc invariant is exact, not statistical).
#
# Fixed -benchtime=100000x iterations — rather than a wall-clock budget —
# keep the measured work identical run to run; -count=3 with the minimum
# taken per benchmark discards scheduler and cache warmup outliers. What
# variance remains is machine noise, which the generous threshold
# absorbs. The baseline is a committed artifact: regenerate it with
# scripts/bench.sh (clean tree) whenever a PR intentionally changes
# performance.
#
# Baselines that record a slots_per_sec throughput (the scale set) are
# additionally gated on it: the run's best slots/s must stay above
# baseline/(1+threshold). The metric is derived from the same timings as
# ns/op, so this adds no statistical power — it exists so the number
# DESIGN.md tells readers to watch is the number CI actually enforces.
#
# The scale baseline is guarded with a smaller fixed count (its per-op
# work is a full slot over a million tasks), more repeats, and a wider
# threshold. The scale benchmarks are bimodal on single-CPU boxes
# (~2.5x between the fast and slow mode, see DESIGN.md §10); bench.sh
# pins the slow mode as the baseline, extra repeats give the min a
# chance to land in either mode, and the 100% threshold absorbs the
# residual swing while still catching the order-of-magnitude accidents
# this gate exists for (e.g. the quadratic calq.Wheel.Reserve admission
# path the first scale run exposed):
#
#	BENCH_GUARD_THRESHOLD=100 scripts/bench_guard.sh BENCH_scale.json 'BenchmarkScale' 500x 4
#
# Usage: scripts/bench_guard.sh [baseline.json] [bench-regex] [benchtime] [count]
#   BENCH_GUARD_THRESHOLD  percent regression tolerated (default 30)
set -eu

cd "$(dirname "$0")/.."
base="${1:-BENCH_core.json}"
pattern="${2:-BenchmarkFig2aPD2|BenchmarkFig2bPD2|BenchmarkFig1Windows}"
benchtime="${3:-100000x}"
count="${4:-3}"
thresh="${BENCH_GUARD_THRESHOLD:-30}"

if [ ! -f "$base" ]; then
	echo "bench_guard.sh: baseline $base not found" >&2
	exit 1
fi

raw="$(mktemp -p . bench_guard.XXXXXX.txt)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench "$pattern" \
	-benchmem -benchtime="$benchtime" -count="$count" . | tee "$raw"

awk -v thresh="$thresh" '
# Pass 1: the baseline JSON, one benchmark per line.
FNR == NR {
	if (match($0, /"name": "[^"]+"/)) {
		name = substr($0, RSTART + 9, RLENGTH - 10)
		ns = ""; al = ""; sl = ""
		if (match($0, /"ns_per_op": [0-9.eE+-]+/))    ns = substr($0, RSTART + 13, RLENGTH - 13)
		if (match($0, /"allocs_per_op": [0-9.eE+-]+/)) al = substr($0, RSTART + 17, RLENGTH - 17)
		if (match($0, /"slots_per_sec": [0-9.eE+-]+/)) sl = substr($0, RSTART + 17, RLENGTH - 17)
		if (ns != "") { base_ns[name] = ns + 0; base_al[name] = al + 0 }
		if (sl != "") base_sl[name] = sl + 0
	}
	next
}
# Pass 2: the fresh run; keep the best (minimum ns/op, maximum slots/s)
# of the -count repeats per benchmark, and the worst allocs/op (that
# invariant is exact).
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix
	ns = ""; al = ""; sl = ""
	for (i = 2; i <= NF; i++) {
		if ($(i) == "ns/op")     ns = $(i - 1)
		if ($(i) == "allocs/op") al = $(i - 1)
		if ($(i) == "slots/s")   sl = $(i - 1)
	}
	if (ns == "" || !(name in base_ns)) next
	if (!(name in run_ns) || ns + 0 < run_ns[name]) run_ns[name] = ns + 0
	if (al != "" && (!(name in run_al) || al + 0 > run_al[name])) run_al[name] = al + 0
	if (sl != "" && (!(name in run_sl) || sl + 0 > run_sl[name])) run_sl[name] = sl + 0
	if (!(name in seen)) { order[++nnames] = name; seen[name] = 1 }
}
END {
	for (k = 1; k <= nnames; k++) {
		name = order[k]
		checked++
		limit = base_ns[name] * (1 + thresh / 100)
		if (run_ns[name] > limit) {
			printf "REGRESSION %s: %.4g ns/op vs baseline %.4g (> +%s%%)\n", name, run_ns[name], base_ns[name], thresh
			bad++
		} else {
			printf "ok %s: %.4g ns/op vs baseline %.4g\n", name, run_ns[name], base_ns[name]
		}
		if ((name in run_al) && run_al[name] > base_al[name]) {
			printf "REGRESSION %s: %d allocs/op vs baseline %d\n", name, run_al[name], base_al[name]
			bad++
		}
		if ((name in base_sl) && (name in run_sl)) {
			floor = base_sl[name] / (1 + thresh / 100)
			if (run_sl[name] < floor) {
				printf "REGRESSION %s: %.4g slots/s vs baseline %.4g (< baseline/(1+%s%%))\n", name, run_sl[name], base_sl[name], thresh
				bad++
			} else {
				printf "ok %s: %.4g slots/s vs baseline %.4g\n", name, run_sl[name], base_sl[name]
			}
		}
	}
	if (checked == 0) { print "bench_guard: no benchmarks matched the baseline"; exit 1 }
	printf "bench_guard: %d benchmarks checked, %d regressions (threshold +%s%% ns/op)\n", checked, bad + 0, thresh
	if (bad > 0) exit 1
}
' "$base" "$raw"
