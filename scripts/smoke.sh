#!/bin/sh
# smoke.sh — end-to-end exercise of the observability layer (DESIGN.md §7),
# run by CI's smoke job and `make smoke`:
#
#   1. pfairsim traces the PD² quickstart set and tracecheck validates the
#      Chrome trace-event JSON (field shapes, non-overlapping lanes, and
#      the release/schedule/migration/join events the README promises).
#   2. pfairsim traces the pinned EPDF counterexample, whose schedule must
#      contain deadline-miss events.
#   3. BenchmarkStepAllocsObserved re-pins the scheduler hot path at
#      0 allocs/op with a live recorder and metrics attached.
#
# Usage: scripts/smoke.sh
set -eu

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "# smoke 1/3: PD² quickstart trace"
go run ./cmd/pfairsim -m 2 -alg pd2 -slots 24 \
	-trace "$tmp/pd2.trace.json" -metrics A:2/3 B:2/3 C:2/3 > "$tmp/pd2.out"
go run ./cmd/tracecheck -spans -require release,migration,join \
	"$tmp/pd2.trace.json"
grep -q '^pfair_migrations_total' "$tmp/pd2.out" || {
	echo "smoke: pfairsim -metrics printed no pfair_migrations_total" >&2
	exit 1
}

echo "# smoke 2/3: EPDF counterexample must trace deadline misses"
go run ./cmd/pfairsim -m 5 -alg epdf -slots 180 \
	-trace "$tmp/epdf.trace.json" \
	T0:4/9 T1:3/6 T2:1/2 T3:8/9 T4:6/10 T5:3/6 T6:9/10 T7:2/3 > /dev/null
go run ./cmd/tracecheck -spans -require release,deadline-miss \
	"$tmp/epdf.trace.json"

echo "# smoke 3/3: observed hot path stays at 0 allocs/op"
go test -run '^$' -bench 'BenchmarkStepAllocsObserved' -benchmem \
	-benchtime=0.2s -count=1 ./internal/core | tee "$tmp/bench.out"
awk '/^BenchmarkStepAllocsObserved/ {
	for (i = 2; i <= NF; i++) if ($(i) == "allocs/op" && $(i-1) != "0") {
		print "smoke: observed hot path allocates (" $(i-1) " allocs/op)" > "/dev/stderr"
		exit 1
	}
	found = 1
}
END { if (!found) { print "smoke: benchmark did not run" > "/dev/stderr"; exit 1 } }
' "$tmp/bench.out"

echo "smoke OK"
