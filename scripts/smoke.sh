#!/bin/sh
# smoke.sh — end-to-end exercise of the observability layer (DESIGN.md §7
# and §12), run by CI's smoke job and `make smoke`:
#
#   1. pfairsim traces the PD² quickstart set and tracecheck validates the
#      Chrome trace-event JSON (field shapes, non-overlapping lanes, and
#      the release/schedule/migration/join events the README promises);
#      pfairtrace must then reconstruct a non-empty accounting report
#      from the artifact.
#   2. pfairsim traces the pinned EPDF counterexample, whose schedule must
#      contain deadline-miss events; pfairtrace must name the missing
#      task and reconstruct the PD² tie-break analysis in the miss window.
#   3. A sharded metrics-only run must publish live pfair_shard_* series.
#   4. BenchmarkStepAllocsObserved and BenchmarkStepAllocsProfiled re-pin
#      the scheduler hot path at 0 allocs/op with a live recorder,
#      metrics, and sampling phase profiler attached.
#
# Usage: scripts/smoke.sh
set -eu

cd "$(dirname "$0")/.."
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

echo "# smoke 1/4: PD² quickstart trace + forensic report"
go run ./cmd/pfairsim -m 2 -alg pd2 -slots 24 \
	-trace "$tmp/pd2.trace.json" -metrics -taskstats -phaseprof 4 \
	A:2/3 B:2/3 C:2/3 > "$tmp/pd2.out"
go run ./cmd/tracecheck -spans -require release,migration,join \
	"$tmp/pd2.trace.json"
grep -q '^pfair_migrations_total' "$tmp/pd2.out" || {
	echo "smoke: pfairsim -metrics printed no pfair_migrations_total" >&2
	exit 1
}
grep -q '^pfair_acct_dispatches_total' "$tmp/pd2.out" || {
	echo "smoke: pfairsim -taskstats -metrics printed no pfair_acct_dispatches_total" >&2
	exit 1
}
grep -q '^pfair_engine_phase_ns_count' "$tmp/pd2.out" || {
	echo "smoke: pfairsim -phaseprof -metrics printed no pfair_engine_phase_ns" >&2
	exit 1
}
go run ./cmd/pfairtrace "$tmp/pd2.trace.json" > "$tmp/pd2.report"
grep -q 'per-task accounting' "$tmp/pd2.report" || {
	echo "smoke: pfairtrace produced no accounting table" >&2
	exit 1
}
grep -q 'trace is complete' "$tmp/pd2.report" || {
	echo "smoke: pfairtrace did not confirm ring completeness" >&2
	exit 1
}
go run ./cmd/pfairtrace -json "$tmp/pd2.trace.json" > "$tmp/pd2.report.json"
grep -q '"tasks"' "$tmp/pd2.report.json" || {
	echo "smoke: pfairtrace -json report has no tasks array" >&2
	exit 1
}

echo "# smoke 2/4: EPDF counterexample traces misses; pfairtrace explains them"
go run ./cmd/pfairsim -m 5 -alg epdf -slots 180 \
	-trace "$tmp/epdf.trace.json" \
	T0:4/9 T1:3/6 T2:1/2 T3:8/9 T4:6/10 T5:3/6 T6:9/10 T7:2/3 > /dev/null
go run ./cmd/tracecheck -spans -require release,deadline-miss \
	"$tmp/epdf.trace.json"
go run ./cmd/pfairtrace -k 3 "$tmp/epdf.trace.json" > "$tmp/epdf.report"
grep -q 'DEADLINE MISS T7' "$tmp/epdf.report" || {
	echo "smoke: pfairtrace did not name T7 as the missing task" >&2
	exit 1
}
grep -q 'b-bit' "$tmp/epdf.report" || {
	echo "smoke: pfairtrace miss window has no b-bit tie reconstruction" >&2
	exit 1
}

echo "# smoke 3/4: sharded metrics-only run publishes shard telemetry"
go run ./cmd/pfairsim -m 4 -shards 4 -slots 500 -metrics \
	A:3/7 B:5/9 C:2/5 D:7/8 E:1/3 F:4/9 > "$tmp/shard.out"
grep -q '^pfair_shard_local_hits_total' "$tmp/shard.out" || {
	echo "smoke: sharded -metrics run printed no pfair_shard_local_hits_total" >&2
	exit 1
}
grep -q 'pfair_shard_occupancy{shard="0"}' "$tmp/shard.out" || {
	echo "smoke: sharded -metrics run printed no per-shard occupancy" >&2
	exit 1
}

echo "# smoke 4/4: observed and profiled hot paths stay at 0 allocs/op"
go test -run '^$' -bench 'BenchmarkStepAllocs(Observed|Profiled)$' -benchmem \
	-benchtime=0.2s -count=1 ./internal/core | tee "$tmp/bench.out"
awk '/^BenchmarkStepAllocs/ {
	for (i = 2; i <= NF; i++) if ($(i) == "allocs/op" && $(i-1) != "0") {
		print "smoke: " $1 " allocates (" $(i-1) " allocs/op)" > "/dev/stderr"
		exit 1
	}
	found++
}
END { if (found < 2) { print "smoke: expected both alloc benchmarks to run" > "/dev/stderr"; exit 1 } }
' "$tmp/bench.out"

echo "smoke OK"
