#!/bin/sh
# bench.sh — run the scheduler hot-path benchmarks and emit a
# machine-readable BENCH_core.json with name, ns/op, and allocs/op per
# benchmark, so CI (or a reviewer) can diff performance across commits.
#
# Usage: scripts/bench.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_core.json}"
raw="$(mktemp -p . bench.XXXXXX.txt)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'BenchmarkFig2aPD2|BenchmarkFig2bPD2|BenchmarkFig1Windows' \
	-benchmem -benchtime=0.2s -count=1 . | tee "$raw"

awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
	name = $1
	nsop = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($(i) == "ns/op")     nsop   = $(i - 1)
		if ($(i) == "allocs/op") allocs = $(i - 1)
	}
	if (nsop == "") next
	if (!first) print ","
	first = 0
	printf "  {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, nsop, (allocs == "" ? "null" : allocs)
}
END { print "\n]" }
' "$raw" > "$out"

echo "wrote $out"
