#!/bin/sh
# bench.sh — run the scheduler hot-path benchmarks and emit a
# machine-readable BENCH_core.json, so CI (or a reviewer) can diff
# performance across commits.
#
# The file is an object: a "meta" block stamping the provenance of the
# numbers (git commit, Go version, GOMAXPROCS) followed by a "benchmarks"
# array with name, ns/op, and allocs/op per benchmark. Apart from the
# measured timings and the stamp itself the output is byte-stable: same
# benchmarks, same order, same formatting on every run.
#
# Usage: scripts/bench.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_core.json}"
raw="$(mktemp -p . bench.XXXXXX.txt)"
trap 'rm -f "$raw"' EXIT

commit="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
dirty=false
if ! git diff --quiet HEAD 2>/dev/null; then
	dirty=true
fi
goversion="$(go env GOVERSION)"
# GOMAXPROCS defaults to the online CPU count unless the env overrides it.
maxprocs="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)}"

go test -run '^$' -bench 'BenchmarkFig2aPD2|BenchmarkFig2bPD2|BenchmarkFig1Windows' \
	-benchmem -benchtime=0.2s -count=1 . | tee "$raw"

awk -v commit="$commit" -v dirty="$dirty" -v gover="$goversion" -v procs="$maxprocs" '
BEGIN {
	print "{"
	printf "  \"meta\": {\"commit\": \"%s\", \"dirty\": %s, \"go\": \"%s\", \"gomaxprocs\": %s},\n", commit, dirty, gover, procs
	print "  \"benchmarks\": ["
	first = 1
}
/^Benchmark/ {
	name = $1
	nsop = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($(i) == "ns/op")     nsop   = $(i - 1)
		if ($(i) == "allocs/op") allocs = $(i - 1)
	}
	if (nsop == "") next
	if (!first) print ","
	first = 0
	printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, nsop, (allocs == "" ? "null" : allocs)
}
END { print "\n  ]\n}" }
' "$raw" > "$out"

echo "wrote $out"
