#!/bin/sh
# bench.sh — run the scheduler hot-path benchmarks and emit a
# machine-readable BENCH_core.json, so CI (or a reviewer) can diff
# performance across commits.
#
# The file is an object: a "meta" block stamping the provenance of the
# numbers (git commit, Go version, GOMAXPROCS) followed by a "benchmarks"
# array with name, ns/op, and allocs/op per benchmark. Apart from the
# measured timings and the stamp itself the output is byte-stable: same
# benchmarks, same order, same formatting on every run.
#
# Every run also appends a dated entry to BENCH_core.trajectory.json, an
# append-only JSON array recording the repo's performance history commit
# by commit.
#
# A dirty working tree is refused: numbers that cannot be attributed to a
# commit poison both the checked-in baseline and the trajectory. Set
# BENCH_ALLOW_DIRTY=1 to override for local experiments (the entry is
# still stamped dirty).
#
# Usage: scripts/bench.sh [output.json]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_core.json}"
traj="BENCH_core.trajectory.json"
raw="$(mktemp -p . bench.XXXXXX.txt)"
trap 'rm -f "$raw"' EXIT

commit="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
dirty=false
if ! git diff --quiet HEAD 2>/dev/null; then
	dirty=true
fi
if [ "$dirty" = true ]; then
	if [ "${BENCH_ALLOW_DIRTY:-}" = "1" ]; then
		echo "bench.sh: WARNING: working tree is dirty; numbers are not attributable to commit $commit" >&2
	else
		echo "bench.sh: refusing to benchmark a dirty working tree (commit stamps would lie)." >&2
		echo "bench.sh: commit or stash your changes, or set BENCH_ALLOW_DIRTY=1 to override." >&2
		exit 1
	fi
fi
goversion="$(go env GOVERSION)"
# GOMAXPROCS defaults to the online CPU count unless the env overrides it.
maxprocs="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)}"

go test -run '^$' -bench 'BenchmarkFig2aPD2|BenchmarkFig2bPD2|BenchmarkFig1Windows' \
	-benchmem -benchtime=0.2s -count=1 . | tee "$raw"

awk -v commit="$commit" -v dirty="$dirty" -v gover="$goversion" -v procs="$maxprocs" '
BEGIN {
	print "{"
	printf "  \"meta\": {\"commit\": \"%s\", \"dirty\": %s, \"go\": \"%s\", \"gomaxprocs\": %s},\n", commit, dirty, gover, procs
	print "  \"benchmarks\": ["
	first = 1
}
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix: names are machine-independent
	nsop = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($(i) == "ns/op")     nsop   = $(i - 1)
		if ($(i) == "allocs/op") allocs = $(i - 1)
	}
	if (nsop == "") next
	if (!first) print ","
	first = 0
	printf "    {\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, nsop, (allocs == "" ? "null" : allocs)
}
END { print "\n  ]\n}" }
' "$raw" > "$out"

echo "wrote $out"

# Append this run to the trajectory: one compact dated entry per run, the
# file as a whole a valid JSON array.
date="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
entry="$(awk -v date="$date" -v commit="$commit" -v dirty="$dirty" -v gover="$goversion" '
BEGIN {
	printf "{\"date\": \"%s\", \"commit\": \"%s\", \"dirty\": %s, \"go\": \"%s\", \"benchmarks\": [", date, commit, dirty, gover
	first = 1
}
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	nsop = ""; allocs = ""
	for (i = 2; i <= NF; i++) {
		if ($(i) == "ns/op")     nsop   = $(i - 1)
		if ($(i) == "allocs/op") allocs = $(i - 1)
	}
	if (nsop == "") next
	if (!first) printf ", "
	first = 0
	printf "{\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s}", name, nsop, (allocs == "" ? "null" : allocs)
}
END { printf "]}" }
' "$raw")"

if [ -f "$traj" ]; then
	prev="$(sed '$d' "$traj")" # drop the closing bracket
	printf '%s,\n%s\n]\n' "$prev" "$entry" > "$traj"
else
	printf '[\n%s\n]\n' "$entry" > "$traj"
fi
echo "appended to $traj"
