#!/bin/sh
# bench.sh — run a scheduler benchmark set and emit a machine-readable
# JSON baseline, so CI (or a reviewer) can diff performance across
# commits. The default set is the hot-path benchmarks (BENCH_core.json);
# pass a different output and pattern for other sets, e.g. the scale run:
#
#	scripts/bench.sh BENCH_scale.json 'BenchmarkScale' 500x 3
#
# The file is an object: a "meta" block stamping the provenance of the
# numbers (git commit, Go version, GOMAXPROCS) followed by a "benchmarks"
# array with name, ns/op, and allocs/op per benchmark — plus slots/s for
# benchmarks that report that throughput metric. Apart from the measured
# timings and the stamp itself the output is byte-stable: same
# benchmarks, same order, same formatting on every run.
#
# With count > 1 the baseline pins the SLOWEST repeat per benchmark
# (max ns/op, max allocs/op, min slots/s). Baselines exist to catch
# regressions: bench_guard.sh compares its best repeat against this
# file, so pinning a lucky fast repeat turns machine bimodality into
# intermittent CI failures. The scale benchmarks on single-CPU boxes
# swing ~2.5x run to run (see DESIGN.md §10); a conservative baseline
# plus the guard's widened scale threshold absorbs that.
#
# Every run also appends a dated entry to <output>.trajectory.json, an
# append-only JSON array recording the repo's performance history commit
# by commit. Re-running on the SAME commit replaces that commit's last
# entry instead of appending a duplicate: regenerating a baseline while
# iterating on a PR used to leave N near-identical trajectory entries
# for one commit, which made the history lie about how often the tree
# changed.
#
# A dirty working tree is refused: numbers that cannot be attributed to a
# commit poison both the checked-in baseline and the trajectory. Set
# BENCH_ALLOW_DIRTY=1 to override for local experiments (the entry is
# still stamped dirty; dirty entries are never deduplicated, since they
# do not represent the commit they name).
#
# Usage: scripts/bench.sh [output.json] [bench-regex] [benchtime] [count]
set -eu

cd "$(dirname "$0")/.."
out="${1:-BENCH_core.json}"
pattern="${2:-BenchmarkFig2aPD2|BenchmarkFig2bPD2|BenchmarkFig1Windows}"
benchtime="${3:-0.2s}"
count="${4:-1}"
traj="${out%.json}.trajectory.json"
raw="$(mktemp -p . bench.XXXXXX.txt)"
trap 'rm -f "$raw"' EXIT

commit="$(git rev-parse HEAD 2>/dev/null || echo unknown)"
dirty=false
if ! git diff --quiet HEAD 2>/dev/null; then
	dirty=true
fi
if [ "$dirty" = true ]; then
	if [ "${BENCH_ALLOW_DIRTY:-}" = "1" ]; then
		echo "bench.sh: WARNING: working tree is dirty; numbers are not attributable to commit $commit" >&2
	else
		echo "bench.sh: refusing to benchmark a dirty working tree (commit stamps would lie)." >&2
		echo "bench.sh: commit or stash your changes, or set BENCH_ALLOW_DIRTY=1 to override." >&2
		exit 1
	fi
fi
goversion="$(go env GOVERSION)"
# GOMAXPROCS defaults to the online CPU count unless the env overrides it.
maxprocs="${GOMAXPROCS:-$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 0)}"

go test -run '^$' -bench "$pattern" \
	-benchmem -benchtime="$benchtime" -count="$count" . | tee "$raw"

# benchcollect is shared awk source: parse one `BenchmarkX ...` line and
# fold it into the per-name aggregate, keeping the conservative repeat
# (max ns/op, max allocs/op, min slots/s — with count=1 this is the
# identity). Values stay the strings go printed so formatting survives.
benchcollect='
	name = $1
	sub(/-[0-9]+$/, "", name) # strip the GOMAXPROCS suffix: names are machine-independent
	nsop = ""; allocs = ""; slots = ""
	for (i = 2; i <= NF; i++) {
		if ($(i) == "ns/op")     nsop   = $(i - 1)
		if ($(i) == "allocs/op") allocs = $(i - 1)
		if ($(i) == "slots/s")   slots  = $(i - 1)
	}
	if (nsop == "") next
	if (!(name in max_ns)) {
		order[++nnames] = name
		max_ns[name] = nsop; max_al[name] = allocs; min_sl[name] = slots
	} else {
		if (nsop + 0 > max_ns[name] + 0) max_ns[name] = nsop
		if (allocs != "" && (max_al[name] == "" || allocs + 0 > max_al[name] + 0)) max_al[name] = allocs
		if (slots != "" && (min_sl[name] == "" || slots + 0 < min_sl[name] + 0)) min_sl[name] = slots
	}
'
# benchjson emits the aggregate for order[k] as one JSON object.
# Benchmarks that b.ReportMetric a slots/s throughput get a
# slots_per_sec field; others omit it, keeping the core baseline format
# unchanged.
benchjson='
	name = order[k]
	printf "{\"name\": \"%s\", \"ns_per_op\": %s, \"allocs_per_op\": %s", name, max_ns[name], (max_al[name] == "" ? "null" : max_al[name])
	if (min_sl[name] != "") printf ", \"slots_per_sec\": %s", min_sl[name]
	printf "}"
'

awk -v commit="$commit" -v dirty="$dirty" -v gover="$goversion" -v procs="$maxprocs" '
BEGIN {
	print "{"
	printf "  \"meta\": {\"commit\": \"%s\", \"dirty\": %s, \"go\": \"%s\", \"gomaxprocs\": %s},\n", commit, dirty, gover, procs
	print "  \"benchmarks\": ["
}
/^Benchmark/ {
'"$benchcollect"'
}
END {
	for (k = 1; k <= nnames; k++) {
		if (k > 1) print ","
		printf "    "
'"$benchjson"'
	}
	print "\n  ]\n}"
}
' "$raw" > "$out"

echo "wrote $out"

# Append this run to the trajectory: one compact dated entry per run, the
# file as a whole a valid JSON array.
date="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
entry="$(awk -v date="$date" -v commit="$commit" -v dirty="$dirty" -v gover="$goversion" '
BEGIN {
	printf "{\"date\": \"%s\", \"commit\": \"%s\", \"dirty\": %s, \"go\": \"%s\", \"benchmarks\": [", date, commit, dirty, gover
}
/^Benchmark/ {
'"$benchcollect"'
}
END {
	for (k = 1; k <= nnames; k++) {
		if (k > 1) printf ", "
'"$benchjson"'
	}
	printf "]}"
}
' "$raw")"

if [ -f "$traj" ]; then
	# Same-commit dedup: if the file's LAST entry is a clean run of this
	# commit, replace it rather than appending a near-duplicate. Only the
	# last entry is considered — an interleaved run on another commit
	# legitimately starts a new entry, preserving the ordering of events.
	last="$(sed '$d' "$traj" | tail -n 1)"
	case "$dirty,$last" in
	false,*"\"commit\": \"$commit\""*"\"dirty\": false"*)
		prev="$(sed '$d' "$traj" | sed '$d')" # drop closing bracket and the stale entry
		if [ "$prev" = "[" ]; then
			printf '[\n%s\n]\n' "$entry" > "$traj"
		else
			# prev still ends with the separator comma that preceded the
			# stale entry, so a plain join re-forms a valid array.
			printf '%s\n%s\n]\n' "$prev" "$entry" > "$traj"
		fi
		echo "replaced same-commit entry in $traj"
		;;
	*)
		prevall="$(sed '$d' "$traj")" # drop the closing bracket
		printf '%s,\n%s\n]\n' "$prevall" "$entry" > "$traj"
		echo "appended to $traj"
		;;
	esac
else
	printf '[\n%s\n]\n' "$entry" > "$traj"
	echo "appended to $traj"
fi
